// Streaming-engine contracts (workload/stream.h + the bounded-memory path
// through core::Simulation and fed::FederatedSimulation):
//  - GeneratedTaskStream reproduces Workload::generate EXACTLY — bit-for-bit
//    TaskSpec sequences, deadlines included — for all three arrival
//    patterns.
//  - ORACLE: a streamed trial is result-identical to the materialized trial
//    across mapping engines (adaptive, forced-incremental, and reference —
//    whose streamed digests must also all agree with EACH OTHER), immediate
//    and batch heuristics, warm-up trimming, active machine churn + retry,
//    an acting elastic controller, and the federation (N=1 and N=3).
//  - The experiment layer produces identical aggregates when stream.enabled
//    flips, single-cluster and federated.
//  - Bounded memory: task slots recycle, the event queue's position window
//    compacts, online metrics keep only the undecided margin pending, and a
//    multi-hundred-thousand-task streamed trial stays inside a flat RSS
//    envelope no materialized run could fit.

#include <gtest/gtest.h>

#include <cstdlib>
#include <memory>
#include <vector>

#include "core/simulation.h"
#include "exp/experiment.h"
#include "exp/scenario.h"
#include "fed/fed_experiment.h"
#include "fed/federation.h"
#include "sim/event_queue.h"
#include "sim/metrics.h"
#include "sim/task.h"
#include "test_util.h"
#include "workload/stream.h"
#include "workload/workload.h"

#if defined(__unix__) || defined(__APPLE__)
#include <sys/resource.h>
#define HCS_HAVE_RUSAGE 1
#endif

namespace {

using namespace hcs;

double testScale() {
  if (const char* env = std::getenv("HCS_SCALE")) {
    const double s = std::strtod(env, nullptr);
    if (s > 0.0) return std::min(s, 0.03);
  }
  return 0.03;
}

std::vector<workload::TaskSpec> drain(workload::TaskStream& stream) {
  std::vector<workload::TaskSpec> specs;
  while (stream.peek() != nullptr) specs.push_back(stream.pop());
  return specs;
}

/// Everything a trial reports, for exact streamed == materialized checks.
/// (Lifecycle traces carry task ids, which legitimately differ once the
/// streamed pool recycles slots — the RESULT must not.)
struct ResultDigest {
  double robustness = 0.0;
  std::size_t mappingEvents = 0;
  double makespan = 0.0;
  std::size_t onTime = 0, late = 0, reactive = 0, proactive = 0, defers = 0;
  std::size_t abandoned = 0, rejected = 0, retries = 0, failedThenMet = 0;
  std::size_t machineFailures = 0, scaleUps = 0, scaleDowns = 0;
  std::size_t counted = 0;
  double utilizationPct = 0.0, machineSeconds = 0.0;
  std::vector<double> utilization;
  std::vector<double> fairness;

  bool operator==(const ResultDigest&) const = default;
};

ResultDigest digestOf(const core::TrialResult& r) {
  ResultDigest d;
  d.robustness = r.robustnessPercent;
  d.mappingEvents = r.mappingEvents;
  d.makespan = r.makespan;
  d.onTime = r.metrics.completedOnTime();
  d.late = r.metrics.completedLate();
  d.reactive = r.metrics.droppedReactive();
  d.proactive = r.metrics.droppedProactive();
  d.defers = r.metrics.deferrals();
  d.abandoned = r.metrics.abandoned();
  d.rejected = r.metrics.rejected();
  d.retries = r.metrics.retries();
  d.failedThenMet = r.metrics.failedThenMet();
  d.machineFailures = r.metrics.machineFailures();
  d.scaleUps = r.metrics.scaleUps();
  d.scaleDowns = r.metrics.scaleDowns();
  d.counted = r.metrics.countedTasks();
  d.utilizationPct = r.metrics.utilizationPercent();
  d.machineSeconds = r.metrics.onlineMachineSeconds();
  d.utilization = r.machineUtilization;
  d.fairness = r.fairnessScores;
  return d;
}

/// Runs the same trial twice — materialized and streamed off the identical
/// generator state — and returns both digests.
std::pair<ResultDigest, ResultDigest> runBothWays(
    const exp::PaperScenario& scenario, const sim::ExecutionModel& model,
    const workload::ArrivalSpec& arrival, const core::SimulationConfig& config,
    std::uint64_t seed) {
  const workload::Workload wl =
      workload::Workload::generate(*scenario.pet(), arrival, {}, seed);
  const core::TrialResult materialized =
      core::Simulation(model, wl, config).run();
  workload::GeneratedTaskStream stream(*scenario.pet(), arrival, {}, seed);
  const core::TrialResult streamed =
      core::Simulation(model, stream, config).run();
  return {digestOf(materialized), digestOf(streamed)};
}

// --- GeneratedTaskStream == Workload::generate ------------------------------

class GeneratedStreamExactness
    : public ::testing::TestWithParam<workload::ArrivalPattern> {};

TEST_P(GeneratedStreamExactness, StreamsTheEagerSequenceBitForBit) {
  exp::PaperScenario::Options options;
  options.scale = testScale();
  const exp::PaperScenario scenario(options);

  workload::ArrivalSpec arrival;
  if (GetParam() == workload::ArrivalPattern::Bursty) {
    arrival.pattern = workload::ArrivalPattern::Bursty;
    arrival.span = 200;
    arrival.totalTasks = 0;
    arrival.numTaskTypes = scenario.pet()->numTaskTypes();
    arrival.burstBaseRate = 2.0;
    arrival.burstPeakRate = 10.0;
    arrival.burstWidth = 4.0;
    arrival.burstPeriod = 40.0;
  } else {
    arrival = scenario.arrivalSpec(exp::PaperScenario::kRate20k, GetParam());
  }

  for (const std::uint64_t seed : {2019ULL, 7ULL, 123456789ULL}) {
    const workload::Workload wl =
        workload::Workload::generate(*scenario.pet(), arrival, {}, seed);
    workload::GeneratedTaskStream stream(*scenario.pet(), arrival, {}, seed);
    EXPECT_EQ(stream.numTaskTypes(), wl.numTaskTypes());
    const auto specs = drain(stream);
    ASSERT_EQ(specs.size(), wl.size()) << "seed " << seed;
    for (std::size_t i = 0; i < specs.size(); ++i) {
      ASSERT_EQ(specs[i].type, wl.tasks()[i].type) << i;
      ASSERT_EQ(specs[i].arrival, wl.tasks()[i].arrival) << i;
      ASSERT_EQ(specs[i].deadline, wl.tasks()[i].deadline) << i;
      ASSERT_EQ(specs[i].value, wl.tasks()[i].value) << i;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(AllPatterns, GeneratedStreamExactness,
                         ::testing::Values(workload::ArrivalPattern::Spiky,
                                           workload::ArrivalPattern::Constant,
                                           workload::ArrivalPattern::Bursty));

// --- The oracle: streamed trial == materialized trial -----------------------

class StreamedTrialOracle : public ::testing::TestWithParam<const char*> {};

TEST_P(StreamedTrialOracle, MatchesMaterializedAcrossEngineConfigs) {
  exp::PaperScenario::Options options;
  options.scale = testScale();
  const exp::PaperScenario scenario(options);
  const workload::ArrivalSpec arrival = scenario.arrivalSpec(
      exp::PaperScenario::kRate25k, workload::ArrivalPattern::Spiky);

  // kDefaultMinQueue leaves the adaptive threshold at its config default;
  // 0 forces every round down the incremental path — without it, trials at
  // test scale (whose queues can stay under the default threshold) would
  // exercise only the narrow-round evaluation.
  constexpr std::size_t kDefaultMinQueue = static_cast<std::size_t>(-1);
  struct EngineConfig {
    const char* label;
    bool incremental;
    std::size_t minQueue;
    bool pctCache;
    bool abortOverdue;
    std::size_t warmup;
  };
  // The first three legs differ only in digest-preserving engine knobs, so
  // beyond each one's materialized == streamed oracle, their *streamed*
  // digests must also agree with each other — the cross-engine leg of the
  // byte-identity oracle (a streamed reference run is the paper's reading;
  // a streamed adaptive/incremental run must not drift from it).
  bool haveCrossEngine = false;
  ResultDigest crossEngine;
  for (const EngineConfig& ec :
       {EngineConfig{"adaptive", true, kDefaultMinQueue, true, false, 0},
        EngineConfig{"incremental", true, 0, true, false, 0},
        EngineConfig{"reference", false, kDefaultMinQueue, false, false, 0},
        EngineConfig{"abort+warmup", true, kDefaultMinQueue, true, true,
                     50}}) {
    core::SimulationConfig config;
    config.heuristic = GetParam();
    config.incrementalMappingEnabled = ec.incremental;
    if (ec.minQueue != kDefaultMinQueue) {
      config.incrementalMapMinQueue = ec.minQueue;
    }
    config.pctCacheEnabled = ec.pctCache;
    config.abortRunningAtDeadline = ec.abortOverdue;
    config.warmupMargin = ec.warmup;
    const auto [materialized, streamed] =
        runBothWays(scenario, scenario.hetero(), arrival, config, 7);
    EXPECT_EQ(materialized, streamed)
        << GetParam() << " diverged when streamed (" << ec.label << ")";
    if (!ec.abortOverdue && ec.warmup == 0) {
      if (!haveCrossEngine) {
        crossEngine = streamed;
        haveCrossEngine = true;
      } else {
        EXPECT_EQ(crossEngine, streamed)
            << GetParam() << " streamed engines diverged from each other ("
            << ec.label << " vs adaptive)";
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(HeuristicsTimesEngines, StreamedTrialOracle,
                         ::testing::Values("MM", "MSD", "MaxMin", "MCT",
                                           "KPB", "MaxChance"));

TEST(StreamedTrialOracleTest, MatchesMaterializedUnderMachineChurn) {
  exp::PaperScenario::Options options;
  options.scale = testScale();
  const exp::PaperScenario scenario(options);
  const workload::ArrivalSpec arrival = scenario.arrivalSpec(
      exp::PaperScenario::kRate20k, workload::ArrivalPattern::Spiky);

  core::SimulationConfig config;
  config.heuristic = "MM";
  config.warmupMargin = 0;
  config.faults.enabled = true;
  config.faults.mtbf = 40.0;
  config.faults.mttr = 6.0;
  const auto [materialized, streamed] =
      runBothWays(scenario, scenario.hetero(), arrival, config, 13);
  ASSERT_GT(materialized.machineFailures, 0u)
      << "churn config injected nothing; the oracle would be vacuous";
  EXPECT_EQ(materialized, streamed);
}

TEST(StreamedTrialOracleTest, MatchesMaterializedUnderActiveElasticity) {
  exp::PaperScenario::Options options;
  options.scale = testScale();
  const exp::PaperScenario scenario(options);
  const workload::ArrivalSpec arrival = scenario.arrivalSpec(
      exp::PaperScenario::kRate25k, workload::ArrivalPattern::Spiky);

  // Base cluster plus two parked machines of the base's first type; the
  // queue-bound controller may genuinely boot and retire them mid-trial.
  const sim::ExecutionModel& base = scenario.hetero();
  std::vector<int> types;
  for (int j = 0; j < base.numMachines(); ++j) {
    types.push_back(base.machineTypeOf(j));
  }
  const std::size_t baseMachines = types.size();
  const int elasticType = types.front();
  int baseCount = 0;
  for (int t : types) {
    if (t == elasticType) ++baseCount;
  }
  types.push_back(elasticType);
  types.push_back(elasticType);
  const workload::BoundExecutionModel expanded(scenario.pet(), types);

  core::SimulationConfig config;
  config.heuristic = "MM";
  config.warmupMargin = 0;
  config.elasticity.enabled = true;
  config.elasticity.policy = sim::ElasticityPolicy::QueueBound;
  config.elasticity.period = 3.0;
  config.elasticity.bootLatency = 1.5;
  config.elasticity.baseMachines = baseMachines;
  config.elasticity.pool.push_back({elasticType, baseCount, baseCount + 2});

  const auto [materialized, streamed] =
      runBothWays(scenario, expanded, arrival, config, 11);
  ASSERT_GT(materialized.scaleUps, 0u)
      << "the controller never acted; the oracle would be vacuous";
  EXPECT_EQ(materialized, streamed);
}

TEST(StreamedTrialOracleTest, MatchesMaterializedThroughTheFederation) {
  exp::PaperScenario::Options options;
  options.scale = testScale();
  const exp::PaperScenario scenario(options);
  const workload::ArrivalSpec arrival = scenario.arrivalSpec(
      exp::PaperScenario::kRate20k, workload::ArrivalPattern::Spiky);
  const workload::Workload wl =
      workload::Workload::generate(*scenario.pet(), arrival, {}, 5);

  core::SimulationConfig config;
  config.heuristic = "MM";
  config.warmupMargin = 50;

  for (const std::size_t clusters : {std::size_t{1}, std::size_t{3}}) {
    fed::FederationSpec spec;
    spec.clusters = clusters;
    std::vector<const sim::ExecutionModel*> models(clusters,
                                                   &scenario.hetero());
    const fed::FederatedTrialResult materialized =
        fed::FederatedSimulation(models, wl, config, spec).run();
    workload::GeneratedTaskStream stream(*scenario.pet(), arrival, {}, 5);
    const fed::FederatedTrialResult streamed =
        fed::FederatedSimulation(models, stream, config, spec).run();
    EXPECT_EQ(digestOf(materialized.total), digestOf(streamed.total))
        << clusters << "-cluster federation diverged when streamed";
    ASSERT_EQ(materialized.clusters.size(), streamed.clusters.size());
    for (std::size_t c = 0; c < materialized.clusters.size(); ++c) {
      EXPECT_EQ(materialized.clusters[c].tasksRouted,
                streamed.clusters[c].tasksRouted);
      EXPECT_EQ(materialized.clusters[c].metrics.completedOnTime(),
                streamed.clusters[c].metrics.completedOnTime());
    }
    if (clusters == 1) {
      // The transitive oracle: streamed federation(N=1) == plain engine.
      const core::TrialResult direct =
          core::Simulation(scenario.hetero(), wl, config).run();
      EXPECT_EQ(digestOf(direct), digestOf(streamed.total));
    }
  }
}

TEST(StreamedExperimentTest, AggregatesMatchWhenStreamingFlips) {
  exp::PaperScenario::Options options;
  options.scale = testScale();
  const exp::PaperScenario scenario(options);

  exp::ExperimentSpec spec = scenario.experimentSpec(
      exp::PaperScenario::kRate20k, workload::ArrivalPattern::Spiky);
  spec.trials = 3;
  spec.sim.heuristic = "MM";
  const exp::ExperimentResult materialized =
      exp::runExperiment(scenario.hetero(), spec);
  spec.stream.enabled = true;
  const exp::ExperimentResult streamed =
      exp::runExperiment(scenario.hetero(), spec);
  EXPECT_EQ(materialized.perTrialRobustness, streamed.perTrialRobustness);
  EXPECT_EQ(materialized.robustnessCi.mean, streamed.robustnessCi.mean);
  EXPECT_EQ(materialized.robustnessCi.halfWidth,
            streamed.robustnessCi.halfWidth);

  fed::FederationSpec fedSpec;
  fedSpec.clusters = 2;
  spec.stream.enabled = false;
  const exp::ExperimentResult fedMaterialized = fed::runFederatedExperiment(
      {&scenario.hetero(), &scenario.hetero()}, spec, fedSpec);
  spec.stream.enabled = true;
  const exp::ExperimentResult fedStreamed = fed::runFederatedExperiment(
      {&scenario.hetero(), &scenario.hetero()}, spec, fedSpec);
  EXPECT_EQ(fedMaterialized.perTrialRobustness,
            fedStreamed.perTrialRobustness);
}

// --- Bounded-memory structure ----------------------------------------------

TEST(BoundedMemoryTest, TaskPoolRecyclesSlotsAndKeepsOrdinals) {
  sim::TaskPool pool;
  pool.enableRecycling();
  std::uint64_t created = 0;
  for (int round = 0; round < 10000; ++round) {
    const sim::TaskId id = pool.create(0, static_cast<double>(round),
                                       static_cast<double>(round) + 5, 1.0);
    EXPECT_EQ(pool[id].ordinal, created);
    ++created;
    pool.retire(id);
  }
  EXPECT_EQ(pool.createdCount(), created);
  // Ten thousand tasks, a handful of live slots.
  EXPECT_LE(pool.slotCount(), 4u);
}

TEST(BoundedMemoryTest, NonRecyclingPoolIgnoresRetire) {
  // Materialized trials call the same retire() sites; without
  // enableRecycling() ids must stay stable (id == arrival index).
  sim::TaskPool pool;
  for (int i = 0; i < 100; ++i) {
    const sim::TaskId id = pool.create(0, i, i + 5, 1.0);
    EXPECT_EQ(id, i);
    pool.retire(id);
  }
  EXPECT_EQ(pool.slotCount(), 100u);
}

TEST(BoundedMemoryTest, EventQueuePositionWindowCompacts) {
  sim::EventQueue events;
  // A long push/pop churn with a small live set: the seq-indexed position
  // window must stay near the live span instead of growing with total
  // pushes.
  double t = 0.0;
  for (int i = 0; i < 200000; ++i) {
    events.push(t + 1.0, sim::EventKind::TaskCompletion, 0, 0);
    events.push(t + 2.0, sim::EventKind::TaskArrival, 1, 0);
    events.tryPop();
    events.tryPop();
    t += 1.0;
  }
  EXPECT_LE(events.posWindow(), 4096u);
}

TEST(BoundedMemoryTest, OnlineMetricsKeepOnlyTheUndecidedMargin) {
  // Warm-up margin 100: a terminal task stays pending until 100 more tasks
  // have been created (its cool-down verdict), then folds into the counters
  // the masked accounting would have produced.
  std::uint64_t clock = 0;
  sim::Metrics online(1);
  online.enableOnlineCounting(100, &clock);
  sim::Task task;
  for (int i = 0; i < 5000; ++i) {
    task.id = 0;
    task.ordinal = static_cast<std::uint64_t>(i);
    task.type = 0;
    task.status = sim::TaskStatus::CompletedOnTime;
    clock = static_cast<std::uint64_t>(i) + 1;
    online.recordTerminal(task);
    EXPECT_LE(online.pendingTerminalCount(), 101u);
  }
  online.endStreamCounting();
  // 5000 tasks minus 100 warm-up minus 100 cool-down.
  EXPECT_EQ(online.countedTasks(), 4800u);
  EXPECT_EQ(online.completedOnTime(), 4800u);
  EXPECT_EQ(online.terminalCount(), 5000u);
}

TEST(BoundedMemoryTest, StreamedTrialRunsInFlatRss) {
#if !defined(HCS_HAVE_RUSAGE)
  GTEST_SKIP() << "no getrusage on this platform";
#else
#if defined(__SANITIZE_ADDRESS__) || defined(__SANITIZE_THREAD__)
  GTEST_SKIP() << "RSS bounds are meaningless under sanitizers";
#endif
#if defined(__has_feature)
#if __has_feature(address_sanitizer) || __has_feature(thread_sanitizer) || \
    __has_feature(memory_sanitizer)
  GTEST_SKIP() << "RSS bounds are meaningless under sanitizers";
#endif
#endif
  // Enough tasks that materializing them (specs + a task pool entry each)
  // would need hundreds of MB; the streamed trial must stay in a flat
  // envelope.  HCS_STREAM_TASKS overrides the CI default.
  std::size_t totalTasks = 2000000;
  if (const char* env = std::getenv("HCS_STREAM_TASKS")) {
    const unsigned long long n = std::strtoull(env, nullptr, 10);
    if (n > 0) totalTasks = static_cast<std::size_t>(n);
  }

  const testutil::FakeModel model = testutil::FakeModel::deterministic(
      {{1.0, 1.2, 1.4, 1.6}, {0.8, 1.0, 1.2, 1.4}});
  workload::ArrivalSpec arrival;
  arrival.pattern = workload::ArrivalPattern::Constant;
  arrival.totalTasks = totalTasks;
  arrival.numTaskTypes = 2;
  // ~8 arrivals per time unit against ~3.3 tasks/unit of capacity: the
  // overload exercises drops and retirement, and the in-flight window stays
  // small.
  arrival.span = static_cast<double>(totalTasks) / 8.0;

  struct rusage before {};
  getrusage(RUSAGE_SELF, &before);

  const workload::PetMatrix pet = workload::PetMatrix::fromMeans(
      {{1.0, 1.2, 1.4, 1.6}, {0.8, 1.0, 1.2, 1.4}}, 4.0, 99);
  workload::GeneratedTaskStream stream(pet, arrival, {}, 17);
  core::SimulationConfig config;
  config.heuristic = "MCT";
  const core::TrialResult result =
      core::Simulation(model, stream, config).run();
  EXPECT_GT(result.metrics.terminalCount(), totalTasks / 2);

  struct rusage after {};
  getrusage(RUSAGE_SELF, &after);
#if defined(__APPLE__)
  const long deltaKb = (after.ru_maxrss - before.ru_maxrss) / 1024;
#else
  const long deltaKb = after.ru_maxrss - before.ru_maxrss;
#endif
  EXPECT_LT(deltaKb, 160 * 1024)
      << "streamed trial of " << totalTasks
      << " tasks grew the high-water RSS by " << deltaKb
      << " KB - the bounded-memory path is leaking task state";
#endif
}

}  // namespace
