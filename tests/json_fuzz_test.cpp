// Fuzz-style robustness tests for util/json: randomized value trees must
// survive write -> parse -> compare structurally equal (the canonical-form
// contract), and a malformed-input corpus — truncations, bad escapes, deep
// nesting, huge numbers, stray syntax — must be rejected with line-numbered
// JsonError messages and never crash (the ASan CI leg runs this suite).

#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <random>
#include <string>
#include <vector>

#include "util/json.h"

namespace {

using hcs::util::JsonError;
using hcs::util::JsonValue;
using hcs::util::parseJson;
using hcs::util::writeJson;

// --- Random tree generation --------------------------------------------------

class TreeGen {
 public:
  explicit TreeGen(std::uint64_t seed) : rng_(seed) {}

  JsonValue value(int depth) {
    // Leaves only beyond the depth bound; containers get likelier near the
    // root so trees are bushy but bounded.
    const int roll = depth >= 5 ? static_cast<int>(rng_() % 4)
                                : static_cast<int>(rng_() % 6);
    switch (roll) {
      case 0: return JsonValue();                      // null
      case 1: return JsonValue(rng_() % 2 == 0);       // bool
      case 2: return JsonValue(number());
      case 3: return JsonValue(string());
      case 4: {
        JsonValue array = JsonValue::makeArray();
        const std::size_t n = rng_() % 5;
        for (std::size_t i = 0; i < n; ++i) array.append(value(depth + 1));
        return array;
      }
      default: {
        JsonValue object = JsonValue::makeObject();
        const std::size_t n = rng_() % 5;
        for (std::size_t i = 0; i < n; ++i) {
          // Unique keys: the parser rejects duplicates by design.
          object.set(string() + "#" + std::to_string(i), value(depth + 1));
        }
        return object;
      }
    }
  }

  double number() {
    switch (rng_() % 5) {
      case 0:  // small integers (the common scenario-file case)
        return static_cast<double>(static_cast<std::int64_t>(rng_() % 2001) -
                                   1000);
      case 1:  // the full exactly-representable integer range
        return static_cast<double>(
                   static_cast<std::int64_t>(rng_() % (1ull << 53))) *
               (rng_() % 2 == 0 ? 1.0 : -1.0);
      case 2:  // uniform fractions
        return std::uniform_real_distribution<double>(-1.0, 1.0)(rng_);
      case 3: {  // wide-exponent doubles (shortest-form stress)
        const int exp2 = static_cast<int>(rng_() % 600) - 300;
        const double mantissa =
            std::uniform_real_distribution<double>(1.0, 2.0)(rng_);
        const double v = std::ldexp(mantissa, exp2);
        return std::isfinite(v) ? v : 0.0;
      }
      default:
        return 0.0 * (rng_() % 2 == 0 ? 1.0 : -1.0);  // ±0
    }
  }

  std::string string() {
    static const char* kAtoms[] = {
        "a",  "key", "läuft", "路径", "\t",   "\n",     "\"q\"",
        "\\", "/",   " ",     "\x01", "\x1f", "héllo…", "e"};
    std::string out;
    const std::size_t n = rng_() % 4;
    for (std::size_t i = 0; i < n; ++i) {
      out += kAtoms[rng_() % (sizeof kAtoms / sizeof kAtoms[0])];
    }
    return out;
  }

 private:
  std::mt19937_64 rng_;
};

class JsonFuzz : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(JsonFuzz, RandomTreesRoundTripStructurally) {
  TreeGen gen(GetParam());
  for (int i = 0; i < 300; ++i) {
    const JsonValue tree = gen.value(0);
    const std::string text = writeJson(tree);
    JsonValue parsed;
    ASSERT_NO_THROW(parsed = parseJson(text)) << text;
    ASSERT_EQ(parsed, tree) << text;
    // Canonical stability: one more write must reproduce the bytes.
    ASSERT_EQ(writeJson(parsed), text);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, JsonFuzz,
                         ::testing::Values(1u, 42u, 0xdeadbeefu));

// --- Malformed corpus --------------------------------------------------------

void expectLineNumberedRejection(const std::string& text) {
  try {
    (void)parseJson(text);
    FAIL() << "accepted malformed input: " << text;
  } catch (const JsonError& e) {
    EXPECT_NE(std::string(e.what()).find("line "), std::string::npos)
        << "error lacks a line number: " << e.what();
  }
  // origin-prefixed errors keep the line number too
  try {
    (void)parseJson(text, "corpus.json");
    FAIL() << "accepted malformed input: " << text;
  } catch (const JsonError& e) {
    EXPECT_NE(std::string(e.what()).find("corpus.json:line "),
              std::string::npos)
        << e.what();
  }
}

TEST(JsonMalformedTest, EveryTruncationOfAValidDocumentIsRejected) {
  const std::string text = writeJson(parseJson(
      R"({"a": [1, 2.5, null], "b": {"c": "x\n\"y\"", "d": [true, false]},
          "e": -1.25e-3})"));
  // writeJson ends with exactly one '\n' after the closing brace; every
  // prefix that cuts real syntax must throw (never crash, never accept).
  ASSERT_EQ(text.back(), '\n');
  for (std::size_t len = 0; len + 2 <= text.size(); ++len) {
    expectLineNumberedRejection(text.substr(0, len));
  }
  // …while dropping only the trailing newline still parses.
  EXPECT_NO_THROW(parseJson(text.substr(0, text.size() - 1)));
}

TEST(JsonMalformedTest, BadEscapesAreRejected) {
  for (const char* text : {
           R"("\x")",        // unknown escape
           R"("\u12")",      // short \u
           R"("\u12G4")",    // non-hex digit
           R"("\uD834")",    // surrogate
           R"("\)",          // lone backslash at EOF
           "\"\x01\"",       // raw control character
           "\"unterminated", // EOF inside string
       }) {
    expectLineNumberedRejection(text);
  }
}

TEST(JsonMalformedTest, DeepNestingIsRejectedNotOverflowed) {
  // Far past the 200-level bound: must throw a clean error, not smash the
  // stack (this is the case the recursion bound exists for).
  const std::string arrays(10000, '[');
  try {
    (void)parseJson(arrays);
    FAIL() << "accepted 10000-deep nesting";
  } catch (const JsonError& e) {
    EXPECT_NE(std::string(e.what()).find("nesting"), std::string::npos)
        << e.what();
  }
  std::string objects;
  for (int i = 0; i < 5000; ++i) objects += "{\"k\":";
  expectLineNumberedRejection(objects);

  // Just below the bound parses fine (and round-trips).
  std::string ok(150, '[');
  ok += "1";
  ok += std::string(150, ']');
  JsonValue v;
  ASSERT_NO_THROW(v = parseJson(ok));
  EXPECT_EQ(parseJson(writeJson(v)), v);
}

TEST(JsonMalformedTest, HugeNumbersAreRejectedUnderflowIsZero) {
  expectLineNumberedRejection("1e999");
  expectLineNumberedRejection("-1e999");
  expectLineNumberedRejection("123456789e999999999999");
  // Underflow is representable (rounds to ±0) and must be accepted.
  EXPECT_EQ(parseJson("1e-999").asNumber(), 0.0);
  // The largest finite double survives a round-trip.
  const std::string max = "1.7976931348623157e308";
  EXPECT_TRUE(std::isfinite(parseJson(max).asNumber()));
}

TEST(JsonMalformedTest, StraySyntaxCorpus) {
  for (const char* text : {
           "",           "tru",        "nul",      "falsee",  "01",
           "1.",         ".5",         "+1",       "--1",     "1e",
           "1e+",        "[1,]",       "[,1]",     "[1 2]",   "[1,2",
           "{,}",        "{\"a\" 1}",  "{a: 1}",   "{\"a\":}", "{\"a\":1,}",
           "1 x",        "[] []",      "{\"a\":1,\"a\":2}",
       }) {
    expectLineNumberedRejection(text);
  }
}

TEST(JsonMalformedTest, ErrorsNameTheOffendingLine) {
  const std::string doc =
      "{\n"            // line 1
      "  \"a\": 1,\n"  // line 2
      "  \"b\": 2,\n"  // line 3
      "  \"c\": ?\n"   // line 4 <- error
      "}\n";
  try {
    (void)parseJson(doc);
    FAIL();
  } catch (const JsonError& e) {
    EXPECT_NE(std::string(e.what()).find("line 4"), std::string::npos)
        << e.what();
  }
}

}  // namespace
