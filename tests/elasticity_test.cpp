// The elastic capacity controller's contracts:
//  - ORACLE: elasticity disabled, or armed with min == max pinning every
//    group, is byte-identical — trace-for-trace, metric-for-metric — to the
//    fixed-capacity engine, across heuristic × pruning configurations, BOTH
//    mapping engines, all three policies, and through the N=1 federation.
//  - Lifecycle: scale-up pays the boot latency before the machine accepts
//    work; scale-down drains gracefully (running/queued tasks finish, then
//    the machine retires) and never aborts work.
//  - Model check (randomized scale-down storms × churn): every task reaches
//    exactly one terminal state, and per-type provisioned capacity never
//    leaves [min, max] at any controller transition.
//  - utilization_pct is computed against *online* machine-seconds, not wall
//    clock: dead capacity does not dilute it.
//  - The scenario schema's `elasticity` block round-trips, rejects malformed
//    input with line numbers, and the bind layer expands the cluster with
//    parked surplus slots (base ids unchanged).

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdlib>
#include <map>
#include <numeric>
#include <string>
#include <vector>

#include "core/simulation.h"
#include "exp/scenario.h"
#include "exp/scenario_spec.h"
#include "fed/federation.h"
#include "sim/elasticity.h"
#include "sim/trace.h"
#include "test_util.h"
#include "workload/workload.h"

namespace {

using namespace hcs;

double testScale() {
  if (const char* env = std::getenv("HCS_SCALE")) {
    const double s = std::strtod(env, nullptr);
    if (s > 0.0) return std::min(s, 0.03);
  }
  return 0.03;
}

/// Full lifecycle trace + result digest of one trial.
struct TrialDigest {
  std::vector<sim::TraceEvent> trace;
  double robustness = 0.0;
  std::size_t mappingEvents = 0;
  double makespan = 0.0;
  std::size_t onTime = 0, late = 0, reactive = 0, proactive = 0, defers = 0;
  std::size_t scaleUps = 0, scaleDowns = 0;
  double machineSeconds = 0.0;
  std::vector<double> utilization;

  bool operator==(const TrialDigest&) const = default;
};

TrialDigest digestOf(const core::TrialResult& r,
                     std::vector<sim::TraceEvent> trace) {
  TrialDigest d;
  d.trace = std::move(trace);
  d.robustness = r.robustnessPercent;
  d.mappingEvents = r.mappingEvents;
  d.makespan = r.makespan;
  d.onTime = r.metrics.completedOnTime();
  d.late = r.metrics.completedLate();
  d.reactive = r.metrics.droppedReactive();
  d.proactive = r.metrics.droppedProactive();
  d.defers = r.metrics.deferrals();
  d.scaleUps = r.metrics.scaleUps();
  d.scaleDowns = r.metrics.scaleDowns();
  d.machineSeconds = r.metrics.onlineMachineSeconds();
  d.utilization = r.machineUtilization;
  return d;
}

TrialDigest runDirect(const core::SimulationConfig& base,
                      const sim::ExecutionModel& model,
                      const workload::Workload& wl) {
  core::SimulationConfig config = base;
  sim::TraceLog log;
  config.traceSink = log.sink();
  const core::TrialResult r = core::Simulation(model, wl, config).run();
  return digestOf(r, log.events());
}

workload::Workload makeWorkload(const exp::PaperScenario& scenario,
                                std::size_t rate, std::uint64_t seed) {
  return workload::Workload::generate(
      *scenario.pet(),
      scenario.arrivalSpec(rate, workload::ArrivalPattern::Spiky), {}, seed);
}

/// min == max pool pinning every machine type at its base count: the armed
/// controller may tick but can never act.
sim::ElasticityConfig pinnedElasticity(const sim::ExecutionModel& model,
                                       sim::ElasticityPolicy policy) {
  sim::ElasticityConfig ec;
  ec.enabled = true;
  ec.policy = policy;
  ec.period = 3.0;
  ec.baseMachines = static_cast<std::size_t>(model.numMachines());
  std::map<int, int> counts;
  for (int j = 0; j < model.numMachines(); ++j) ++counts[model.machineTypeOf(j)];
  for (const auto& [type, count] : counts) {
    ec.pool.push_back({type, count, count});
  }
  return ec;
}

// --- Config validation -------------------------------------------------------

TEST(ElasticityConfigTest, RejectsMalformedConfig) {
  sim::ElasticityConfig ok;
  ok.enabled = true;
  ok.pool.push_back({0, 1, 2});
  EXPECT_NO_THROW(ok.validate());

  auto expectBad = [&](auto mutate) {
    sim::ElasticityConfig bad = ok;
    mutate(bad);
    EXPECT_THROW(bad.validate(), std::invalid_argument);
    bad.enabled = false;  // disabled configs are never validated further
    EXPECT_NO_THROW(bad.validate());
  };
  expectBad([](sim::ElasticityConfig& c) { c.period = 0.0; });
  expectBad([](sim::ElasticityConfig& c) { c.bootLatency = -1.0; });
  expectBad([](sim::ElasticityConfig& c) { c.step = 0; });
  expectBad([](sim::ElasticityConfig& c) {
    c.scaleUpQueue = 1.0;
    c.scaleDownQueue = 2.0;  // inverted hysteresis band
  });
  expectBad([](sim::ElasticityConfig& c) { c.setpoint = 1.5; });
  expectBad([](sim::ElasticityConfig& c) { c.ewmaAlpha = 0.0; });
  expectBad([](sim::ElasticityConfig& c) { c.deadband = 0.8; });
  expectBad([](sim::ElasticityConfig& c) { c.chanceThreshold = 2.0; });
  expectBad([](sim::ElasticityConfig& c) { c.pool[0].minMachines = 0; });
  expectBad([](sim::ElasticityConfig& c) { c.pool[0].maxMachines = 0; });
  expectBad([](sim::ElasticityConfig& c) { c.pool.push_back({0, 1, 1}); });
}

// --- The oracle: pinned (min == max) controller == fixed-capacity engine ----

class PinnedElasticityOracle : public ::testing::TestWithParam<const char*> {};

TEST_P(PinnedElasticityOracle, ArmedButPinnedConfigIsTraceIdentical) {
  exp::PaperScenario::Options options;
  options.scale = testScale();
  const exp::PaperScenario scenario(options);
  const workload::Workload wl =
      makeWorkload(scenario, exp::PaperScenario::kRate25k, 61);

  for (const bool prune : {true, false}) {
    for (const bool incremental : {true, false}) {
      core::SimulationConfig config;
      config.heuristic = GetParam();
      config.pruning = prune ? pruning::PruningConfig{}
                             : pruning::PruningConfig::disabled();
      config.incrementalMappingEnabled = incremental;
      config.warmupMargin = 0;
      const TrialDigest plain = runDirect(config, scenario.hetero(), wl);

      core::SimulationConfig armed = config;
      armed.elasticity = pinnedElasticity(scenario.hetero(),
                                          sim::ElasticityPolicy::QueueBound);
      const TrialDigest pinned = runDirect(armed, scenario.hetero(), wl);
      EXPECT_EQ(plain, pinned)
          << GetParam() << " diverged with a pinned controller (prune="
          << prune << ", incremental=" << incremental << ")";
    }
  }
}

INSTANTIATE_TEST_SUITE_P(HeuristicsTimesPruning, PinnedElasticityOracle,
                         ::testing::Values("MM", "MSD", "MMU", "MaxMin",
                                           "Sufferage", "MCT", "KPB",
                                           "MaxChance"));

TEST(PinnedElasticityOracleTest, AllThreePoliciesHoldTheIdentity) {
  exp::PaperScenario::Options options;
  options.scale = testScale();
  const exp::PaperScenario scenario(options);
  const workload::Workload wl =
      makeWorkload(scenario, exp::PaperScenario::kRate20k, 67);

  core::SimulationConfig config;
  config.heuristic = "MM";
  config.warmupMargin = 0;
  const TrialDigest plain = runDirect(config, scenario.hetero(), wl);

  for (const sim::ElasticityPolicy policy :
       {sim::ElasticityPolicy::QueueBound,
        sim::ElasticityPolicy::TargetUtilization,
        sim::ElasticityPolicy::ChanceSlo}) {
    core::SimulationConfig armed = config;
    armed.elasticity = pinnedElasticity(scenario.hetero(), policy);
    const TrialDigest pinned = runDirect(armed, scenario.hetero(), wl);
    EXPECT_EQ(plain, pinned)
        << sim::toString(policy) << " pinned controller diverged";
  }
}

TEST(PinnedElasticityOracleTest, FederatedN1MatchesDirectEngine) {
  exp::PaperScenario::Options options;
  options.scale = testScale();
  const exp::PaperScenario scenario(options);
  const workload::Workload wl =
      makeWorkload(scenario, exp::PaperScenario::kRate20k, 71);

  core::SimulationConfig armed;
  armed.heuristic = "MM";
  armed.warmupMargin = 0;
  armed.elasticity = pinnedElasticity(scenario.hetero(),
                                      sim::ElasticityPolicy::QueueBound);

  const TrialDigest direct = runDirect(armed, scenario.hetero(), wl);

  std::vector<sim::TraceEvent> trace;
  fed::FederationSpec spec;
  spec.traceSink = [&trace](std::size_t, const sim::TraceEvent& e) {
    trace.push_back(e);
  };
  const fed::FederatedTrialResult r =
      fed::FederatedSimulation({&scenario.hetero()}, wl, armed, spec).run();
  EXPECT_EQ(direct, digestOf(r.total, std::move(trace)));
}

// --- Lifecycle: boot latency, graceful drain, retirement ---------------------

TEST(ElasticLifecycleTest, BootPaysLatencyAndIdleDrainRetires) {
  // One managed type, two machines (ids: 0 = base, 1 = parked surplus).
  const testutil::FakeModel model =
      testutil::FakeModel::deterministic({{1.0, 1.0}});
  std::vector<workload::TaskSpec> tasks;
  for (int i = 0; i < 6; ++i) {
    tasks.push_back({0, 0.1, 100.0, 1.0});
  }
  const workload::Workload wl(std::move(tasks), 1);

  core::SimulationConfig config;
  config.heuristic = "MM";
  config.warmupMargin = 0;
  config.machineQueueCapacity = 4;
  config.elasticity.enabled = true;
  config.elasticity.policy = sim::ElasticityPolicy::QueueBound;
  config.elasticity.period = 1.0;
  config.elasticity.bootLatency = 0.5;
  config.elasticity.scaleUpQueue = 2.0;
  config.elasticity.scaleDownQueue = 1.5;
  config.elasticity.baseMachines = 1;
  config.elasticity.pool.push_back({0, 1, 2});

  sim::TraceLog log;
  config.traceSink = log.sink();
  const core::TrialResult r = core::Simulation(model, wl, config).run();

  // All six tasks completed on time; nothing was aborted by the drain.
  EXPECT_EQ(r.metrics.completedOnTime(), 6u);
  EXPECT_EQ(r.metrics.totals().total(), 6u);

  // Scale-up: exactly one boot, decided at the first tick (t = 1), online
  // after the provisioning delay (t = 1.5).
  const auto booting = log.ofKind(sim::TraceEventKind::MachineBooting);
  const auto booted = log.ofKind(sim::TraceEventKind::MachineBooted);
  ASSERT_EQ(booting.size(), 1u);
  ASSERT_EQ(booted.size(), 1u);
  EXPECT_EQ(booting[0].machine, 1);
  EXPECT_DOUBLE_EQ(booting[0].time, 1.0);
  EXPECT_EQ(booted[0].machine, 1);
  EXPECT_DOUBLE_EQ(booted[0].time, 1.5);
  EXPECT_EQ(r.metrics.scaleUps(), 1u);

  // Machine 1 starts nothing before its boot completed.
  for (const sim::TraceEvent& e : log.ofKind(sim::TraceEventKind::Started)) {
    if (e.machine == 1) EXPECT_GE(e.time, 1.5);
  }

  // Scale-down: the surplus machine drained and retired (idle drain
  // completes on the spot), and the drain never aborted anything.
  const auto draining = log.ofKind(sim::TraceEventKind::MachineDraining);
  const auto retired = log.ofKind(sim::TraceEventKind::MachineRetired);
  ASSERT_EQ(draining.size(), 1u);
  ASSERT_EQ(retired.size(), 1u);
  EXPECT_EQ(draining[0].machine, 1);
  EXPECT_EQ(retired[0].machine, 1);
  EXPECT_GE(r.metrics.scaleDowns(), 1u);

  // Cost accounting: machine 1 was online only from boot to retirement, so
  // total online machine-seconds sit strictly between one machine's
  // wall-clock and two machines' wall-clock.
  EXPECT_GT(r.metrics.onlineMachineSeconds(), r.makespan);
  EXPECT_LT(r.metrics.onlineMachineSeconds(), 2.0 * r.makespan);
  EXPECT_NEAR(r.metrics.utilizationPercent(),
              100.0 * r.metrics.busyMachineSeconds() /
                  r.metrics.onlineMachineSeconds(),
              1e-9);
}

TEST(ElasticLifecycleTest, DrainFinishesQueuedWorkBeforeRetiring) {
  // Force a drain while machine 1 still holds work: load collapses after a
  // front-loaded burst, so the scale-down decision lands while the surplus
  // machine is busy.  The drain must let it finish (no aborts, no orphans).
  const testutil::FakeModel model =
      testutil::FakeModel::deterministic({{4.0, 4.0}});
  std::vector<workload::TaskSpec> tasks;
  for (int i = 0; i < 4; ++i) {
    tasks.push_back({0, 0.1, 100.0, 1.0});
  }
  const workload::Workload wl(std::move(tasks), 1);

  core::SimulationConfig config;
  config.heuristic = "MM";
  config.warmupMargin = 0;
  config.machineQueueCapacity = 4;
  config.elasticity.enabled = true;
  config.elasticity.policy = sim::ElasticityPolicy::QueueBound;
  config.elasticity.period = 1.0;
  config.elasticity.bootLatency = 0.0;
  config.elasticity.scaleUpQueue = 1.5;
  config.elasticity.scaleDownQueue = 1.4;
  config.elasticity.baseMachines = 1;
  config.elasticity.pool.push_back({0, 1, 2});

  sim::TraceLog log;
  config.traceSink = log.sink();
  const core::TrialResult r = core::Simulation(model, wl, config).run();

  EXPECT_EQ(r.metrics.totals().total(), 4u);
  EXPECT_EQ(r.metrics.completedOnTime() + r.metrics.completedLate(), 4u);
  EXPECT_TRUE(log.ofKind(sim::TraceEventKind::TaskFailed).empty());

  // If a drain began while the machine held work, retirement came strictly
  // after its last completion (graceful, not abort-and-orphan).
  const auto draining = log.ofKind(sim::TraceEventKind::MachineDraining);
  const auto retired = log.ofKind(sim::TraceEventKind::MachineRetired);
  ASSERT_FALSE(draining.empty());
  ASSERT_FALSE(retired.empty());
  double lastCompletionOnDrained = 0.0;
  for (const sim::TraceEvent& e : log.ofKind(sim::TraceEventKind::Completed)) {
    if (e.machine == retired.back().machine) {
      lastCompletionOnDrained = std::max(lastCompletionOnDrained, e.time);
    }
  }
  EXPECT_GE(retired.back().time, lastCompletionOnDrained);
}

// --- Model check: scale-down storms × churn ----------------------------------

TEST(ElasticDrainModelCheckTest, StormsKeepEveryInvariant) {
  exp::PaperScenario::Options options;
  options.scale = testScale();
  const exp::PaperScenario scenario(options);

  // Base cluster (one machine per type) + parked surplus of types 0 and 1.
  const int numTypes = scenario.hetero().numMachines();
  std::vector<int> types(static_cast<std::size_t>(numTypes));
  std::iota(types.begin(), types.end(), 0);
  types.insert(types.end(), {0, 0, 1, 1});
  const workload::BoundExecutionModel elastic(scenario.pet(), types);

  sim::ElasticityConfig storm;
  storm.enabled = true;
  storm.period = 0.4;       // aggressive cadence
  storm.bootLatency = 0.7;  // boots outlive a tick: cancel-boot reachable
  storm.step = 2;
  storm.scaleUpQueue = 1.2;  // razor-thin hysteresis: constant flip-flop
  storm.scaleDownQueue = 1.1;
  storm.setpoint = 0.5;
  storm.deadband = 0.05;
  storm.chanceThreshold = 0.95;
  storm.baseMachines = static_cast<std::size_t>(numTypes);
  storm.pool.push_back({0, 1, 3});
  storm.pool.push_back({1, 1, 3});

  std::size_t totalDrains = 0, totalReclaims = 0, totalBootCancels = 0;
  for (const std::uint64_t seed : {3u, 29u, 71u}) {
    for (const sim::ElasticityPolicy policy :
         {sim::ElasticityPolicy::QueueBound,
          sim::ElasticityPolicy::TargetUtilization,
          sim::ElasticityPolicy::ChanceSlo}) {
      for (const bool churn : {false, true}) {
        const workload::Workload wl =
            makeWorkload(scenario, exp::PaperScenario::kRate20k, seed);
        core::SimulationConfig config;
        config.heuristic = "MM";
        config.warmupMargin = 0;
        config.elasticity = storm;
        config.elasticity.policy = policy;
        config.elasticitySeed = seed * 31 + 7;
        if (churn) {
          // Drains race failures: a draining machine may fail mid-drain and
          // recover empty; the invariants must hold regardless.
          config.faults.enabled = true;
          config.faults.mtbf = 30.0;
          config.faults.mttr = 5.0;
          config.faultSeed = seed * 977 + 1;
        }

        sim::TraceLog log;
        config.traceSink = log.sink();
        const core::TrialResult r =
            core::Simulation(elastic, wl, config).run();

        // Every task reaches exactly one terminal state.
        EXPECT_EQ(r.metrics.totals().total(), wl.size())
            << "policy=" << sim::toString(policy) << " seed=" << seed
            << " churn=" << churn;
        std::map<sim::TaskId, std::size_t> terminals;
        // Per-type provisioned capacity (active-not-draining + booting):
        // replayed from the trace, checked after every controller action.
        std::map<int, int> provisioned;
        for (const sim::ElasticGroup& g : storm.pool) {
          provisioned[g.machineType] = 1;  // base cluster: one per type
        }
        const auto boundsOf = [&](int type) {
          for (const sim::ElasticGroup& g : storm.pool) {
            if (g.machineType == type) return g;
          }
          ADD_FAILURE() << "controller touched unmanaged type " << type;
          return sim::ElasticGroup{};
        };
        const auto checkBounds = [&](const sim::TraceEvent& e, int delta) {
          const int type = elastic.machineTypeOf(e.machine);
          const sim::ElasticGroup g = boundsOf(type);
          provisioned[type] += delta;
          EXPECT_GE(provisioned[type], g.minMachines)
              << "capacity fell under min at t=" << e.time;
          EXPECT_LE(provisioned[type], g.maxMachines)
              << "capacity exceeded max at t=" << e.time;
        };
        for (const sim::TraceEvent& e : log.events()) {
          switch (e.kind) {
            case sim::TraceEventKind::Completed:
            case sim::TraceEventKind::DroppedReactive:
            case sim::TraceEventKind::DroppedProactive:
            case sim::TraceEventKind::Abandoned:
              ++terminals[e.task];
              break;
            case sim::TraceEventKind::MachineBooting:
              checkBounds(e, +1);
              break;
            case sim::TraceEventKind::BootCancelled:
              checkBounds(e, -1);
              ++totalBootCancels;
              break;
            case sim::TraceEventKind::MachineDraining:
              checkBounds(e, -1);
              ++totalDrains;
              break;
            case sim::TraceEventKind::DrainCancelled:
              checkBounds(e, +1);
              ++totalReclaims;
              break;
            default:
              break;
          }
        }
        for (const auto& [task, count] : terminals) {
          EXPECT_EQ(count, 1u) << "task " << task << " terminated twice";
        }
        EXPECT_EQ(terminals.size(), wl.size());
      }
    }
  }
  // The sweep actually exercised the storm paths it claims to cover.
  EXPECT_GT(totalDrains, 0u) << "no drain ever happened";
  EXPECT_GT(totalReclaims + totalBootCancels, 0u)
      << "no drain/boot was ever reversed (storm too tame)";
}

TEST(ElasticDrainModelCheckTest, ElasticRunsAreDeterministic) {
  exp::PaperScenario::Options options;
  options.scale = testScale();
  const exp::PaperScenario scenario(options);

  const int numTypes = scenario.hetero().numMachines();
  std::vector<int> types(static_cast<std::size_t>(numTypes));
  std::iota(types.begin(), types.end(), 0);
  types.insert(types.end(), {0, 1});
  const workload::BoundExecutionModel elastic(scenario.pet(), types);
  const workload::Workload wl =
      makeWorkload(scenario, exp::PaperScenario::kRate20k, 83);

  core::SimulationConfig config;
  config.heuristic = "MM";
  config.warmupMargin = 0;
  config.elasticity.enabled = true;
  config.elasticity.period = 0.5;
  config.elasticity.bootLatency = 1.0;
  config.elasticity.scaleUpQueue = 2.0;
  config.elasticity.scaleDownQueue = 1.0;
  config.elasticity.baseMachines = static_cast<std::size_t>(numTypes);
  config.elasticity.pool.push_back({0, 1, 2});
  config.elasticity.pool.push_back({1, 1, 2});

  const TrialDigest first = runDirect(config, elastic, wl);
  const TrialDigest second = runDirect(config, elastic, wl);
  EXPECT_EQ(first, second);
  EXPECT_GT(first.scaleUps, 0u) << "storm config never scaled";
}

// --- utilization_pct: online time, not wall clock ----------------------------

TEST(UtilizationAccountingTest, DeadCapacityDoesNotDiluteUtilization) {
  const testutil::FakeModel model =
      testutil::FakeModel::deterministic({{1.0, 1.0}});
  std::vector<workload::TaskSpec> tasks;
  for (int i = 0; i < 4; ++i) {
    tasks.push_back({0, static_cast<double>(i), 100.0, 1.0});
  }
  const workload::Workload wl(std::move(tasks), 1);

  core::SimulationConfig config;
  config.heuristic = "MM";
  config.warmupMargin = 0;
  config.faults.enabled = true;
  config.faults.initiallyOffline = {1};  // machine 1 never serves
  const core::TrialResult r = core::Simulation(model, wl, config).run();

  // Machine 0 is busy back-to-back for the whole trial; machine 1 logs zero
  // online seconds — utilization against online time is 100%, where a
  // wall-clock denominator would dilute it to 50%.
  EXPECT_EQ(r.metrics.completedOnTime(), 4u);
  EXPECT_DOUBLE_EQ(r.metrics.onlineMachineSeconds(), r.makespan);
  EXPECT_DOUBLE_EQ(r.metrics.utilizationPercent(), 100.0);
}

// --- Scenario schema ---------------------------------------------------------

TEST(ElasticityScenarioTest, BlockParsesAndRoundTrips) {
  const util::JsonValue json = util::parseJson(R"({
    "federation": { "enabled": true, "clusters": 2 },
    "elasticity": {
      "enabled": true,
      "policy": "target_utilization",
      "period": 2.5,
      "boot_latency": 4.0,
      "step": 2,
      "scale_up_queue": 6.0,
      "scale_down_queue": 2.0,
      "setpoint": 0.6,
      "ewma_alpha": 0.4,
      "deadband": 0.15,
      "chance_threshold": 0.8,
      "pool": [
        { "machine_type": 0, "min": 1, "max": 3 },
        { "machine_type": 2, "max": 2 }
      ],
      "cluster_overrides": [
        { "cluster": 1, "policy": "chance_slo", "boot_latency": 1.0 }
      ]
    }
  })");
  const exp::ScenarioSpec spec = exp::parseScenarioSpec(json);
  EXPECT_TRUE(spec.elasticity.enabled);
  EXPECT_EQ(spec.elasticity.policy, sim::ElasticityPolicy::TargetUtilization);
  EXPECT_DOUBLE_EQ(spec.elasticity.period, 2.5);
  EXPECT_DOUBLE_EQ(spec.elasticity.bootLatency, 4.0);
  EXPECT_EQ(spec.elasticity.step, 2);
  EXPECT_DOUBLE_EQ(spec.elasticity.scaleUpQueue, 6.0);
  EXPECT_DOUBLE_EQ(spec.elasticity.scaleDownQueue, 2.0);
  EXPECT_DOUBLE_EQ(spec.elasticity.setpoint, 0.6);
  EXPECT_DOUBLE_EQ(spec.elasticity.ewmaAlpha, 0.4);
  EXPECT_DOUBLE_EQ(spec.elasticity.deadband, 0.15);
  EXPECT_DOUBLE_EQ(spec.elasticity.chanceThreshold, 0.8);
  ASSERT_EQ(spec.elasticity.pool.size(), 2u);
  EXPECT_EQ(spec.elasticity.pool[0].machineType, 0);
  EXPECT_EQ(spec.elasticity.pool[0].minMachines, 1);
  EXPECT_EQ(spec.elasticity.pool[0].maxMachines, 3);
  EXPECT_EQ(spec.elasticity.pool[1].machineType, 2);
  EXPECT_EQ(spec.elasticity.pool[1].minMachines, 1);  // default
  EXPECT_EQ(spec.elasticity.pool[1].maxMachines, 2);
  // The override starts from the base block: every unset key is inherited.
  ASSERT_EQ(spec.elasticityOverrides.size(), 1u);
  EXPECT_EQ(spec.elasticityOverrides[0].cluster, 1u);
  EXPECT_EQ(spec.elasticityOverrides[0].config.policy,
            sim::ElasticityPolicy::ChanceSlo);
  EXPECT_DOUBLE_EQ(spec.elasticityOverrides[0].config.bootLatency, 1.0);
  EXPECT_DOUBLE_EQ(spec.elasticityOverrides[0].config.period, 2.5);
  EXPECT_EQ(spec.elasticityOverrides[0].config.pool.size(), 2u);

  // parse -> serialize -> parse is the identity.
  const exp::ScenarioSpec again =
      exp::parseScenarioSpec(exp::scenarioSpecToJson(spec));
  EXPECT_EQ(exp::scenarioSpecToJson(again), exp::scenarioSpecToJson(spec));
}

TEST(ElasticityScenarioTest, DefaultIsDisabledAndAbsentFromLegacyFiles) {
  const exp::ScenarioSpec spec = exp::parseScenarioSpec(util::parseJson("{}"));
  EXPECT_FALSE(spec.elasticity.enabled);
  EXPECT_FALSE(spec.elasticity.active());
  EXPECT_TRUE(spec.elasticityOverrides.empty());
}

void expectRejected(const char* text, const char* needle) {
  try {
    (void)exp::parseScenarioSpec(util::parseJson(text));
    FAIL() << "expected rejection mentioning \"" << needle << "\"";
  } catch (const exp::ScenarioError& e) {
    EXPECT_NE(std::string(e.what()).find("line "), std::string::npos)
        << e.what();
    EXPECT_NE(std::string(e.what()).find(needle), std::string::npos)
        << e.what();
  }
}

TEST(ElasticityScenarioTest, RejectsMalformedBlocksWithLineNumbers) {
  expectRejected(R"({"elasticity": {"period": 0}})", "period");
  expectRejected(R"({"elasticity": {"policy": "magic"}})", "policy");
  expectRejected(R"({"elasticity": {"step": 0}})", "step");
  expectRejected(R"({"elasticity": {"boot_latency": -1}})", "boot_latency");
  expectRejected(R"({"elasticity": {"setpoint": 1.5}})", "setpoint");
  expectRejected(R"({"elasticity": {"ewma_alpha": 0}})", "ewma_alpha");
  expectRejected(R"({"elasticity": {"deadband": 0.9}})", "deadband");
  expectRejected(
      R"({"elasticity": {"scale_up_queue": 1.0, "scale_down_queue": 2.0}})",
      "hysteresis");
  expectRejected(R"({"elasticity": {"enabled": true}})", "pool");
  expectRejected(R"({"elasticity": {"pool": [{"max": 2}]}})", "machine_type");
  expectRejected(R"({"elasticity": {"pool": [{"machine_type": 0}]}})", "max");
  expectRejected(
      R"({"elasticity": {"pool": [{"machine_type": 99, "max": 2}]}})",
      "out of range");
  expectRejected(R"({"elasticity": {"pool": [
                   {"machine_type": 0, "max": 2},
                   {"machine_type": 0, "max": 3}]}})", "duplicate");
  expectRejected(R"({"elasticity": {"surprise": 1}})", "unknown key");
  // Overrides are per federation cluster: no federation, no overrides.
  expectRejected(R"({"elasticity": {"cluster_overrides": [{"cluster": 0}]}})",
                 "federation.enabled");
  expectRejected(R"({
    "federation": { "enabled": true, "clusters": 2 },
    "elasticity": { "cluster_overrides": [{"cluster": 5}] }
  })", "out of range");
  expectRejected(R"({
    "federation": { "enabled": true, "clusters": 2 },
    "elasticity": { "cluster_overrides": [{"cluster": 1}, {"cluster": 1}] }
  })", "duplicate");
}

TEST(ElasticityScenarioTest, BindExpandsClusterWithParkedSurplus) {
  const util::JsonValue json = util::parseJson(R"({
    "elasticity": {
      "enabled": true,
      "pool": [{ "machine_type": 0, "min": 1, "max": 3 }]
    },
    "run": { "scale": 0.02, "trials": 1 }
  })");
  const exp::ScenarioSpec spec = exp::parseScenarioSpec(json);
  const exp::BoundScenario bound = exp::bindScenario(spec);

  const int base = spec.synthesis.numMachineTypes;  // hetero: one per type
  ASSERT_EQ(bound.model->numMachines(), base + 2);
  // Base ids unchanged; surplus slots appended after them.
  for (int j = 0; j < base; ++j) {
    EXPECT_EQ(bound.model->machineTypeOf(j), j);
  }
  EXPECT_EQ(bound.model->machineTypeOf(base), 0);
  EXPECT_EQ(bound.model->machineTypeOf(base + 1), 0);
  EXPECT_EQ(bound.experiment.sim.elasticity.baseMachines,
            static_cast<std::size_t>(base));
  EXPECT_TRUE(bound.experiment.sim.elasticity.active());
}

TEST(ElasticityScenarioTest, BindRejectsBaseCountOutsidePoolBounds) {
  const util::JsonValue json = util::parseJson(R"({
    "elasticity": {
      "enabled": true,
      "pool": [{ "machine_type": 0, "min": 2, "max": 3 }]
    },
    "run": { "scale": 0.02, "trials": 1 }
  })");
  const exp::ScenarioSpec spec = exp::parseScenarioSpec(json);
  EXPECT_THROW((void)exp::bindScenario(spec), exp::ScenarioError);
}

TEST(ElasticityScenarioTest, FederatedBindResolvesPerClusterConfigs) {
  const util::JsonValue json = util::parseJson(R"({
    "federation": { "enabled": true, "clusters": 2 },
    "elasticity": {
      "enabled": true,
      "pool": [{ "machine_type": 0, "min": 1, "max": 3 }],
      "cluster_overrides": [
        { "cluster": 1, "pool": [{ "machine_type": 1, "min": 1, "max": 2 }] }
      ]
    },
    "run": { "scale": 0.02, "trials": 1 }
  })");
  const exp::ScenarioSpec spec = exp::parseScenarioSpec(json);
  const exp::BoundScenario bound = exp::bindScenario(spec);

  ASSERT_TRUE(bound.federated);
  ASSERT_EQ(bound.federation.clusterElasticity.size(), 2u);
  const int base = spec.synthesis.numMachineTypes;
  // Cluster 0: base pool (type 0, max 3) -> two surplus slots of type 0.
  EXPECT_EQ(bound.fedModels[0]->numMachines(), base + 2);
  EXPECT_EQ(bound.fedModels[0]->machineTypeOf(base), 0);
  // Cluster 1: override pool (type 1, max 2) -> one surplus slot of type 1.
  EXPECT_EQ(bound.fedModels[1]->numMachines(), base + 1);
  EXPECT_EQ(bound.fedModels[1]->machineTypeOf(base), 1);
  EXPECT_EQ(bound.federation.clusterElasticity[0].baseMachines,
            static_cast<std::size_t>(base));
  EXPECT_EQ(bound.federation.clusterElasticity[1].pool[0].machineType, 1);
}

}  // namespace
