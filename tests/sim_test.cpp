// Tests for the discrete-event simulator substrate: tasks, machines with
// PCT tracking (Eq. 1), the event queue, and trial metrics.

#include <gtest/gtest.h>

#include <algorithm>

#include "prob/pmf.h"
#include "sim/event_queue.h"
#include "sim/machine.h"
#include "sim/metrics.h"
#include "sim/task.h"
#include "test_util.h"

namespace {

using hcs::prob::DiscretePmf;
using hcs::sim::EventKind;
using hcs::sim::EventQueue;
using hcs::sim::kInvalidTask;
using hcs::sim::Machine;
using hcs::sim::Metrics;
using hcs::sim::Task;
using hcs::sim::TaskPool;
using hcs::sim::TaskStatus;
using hcs::testutil::FakeModel;

// --- Task / TaskPool ---------------------------------------------------------

TEST(TaskTest, PoolAssignsSequentialIds) {
  TaskPool pool;
  const auto a = pool.create(0, 1.0, 5.0);
  const auto b = pool.create(1, 2.0, 6.0);
  EXPECT_EQ(a, 0);
  EXPECT_EQ(b, 1);
  EXPECT_EQ(pool.size(), 2u);
  EXPECT_EQ(pool[b].type, 1);
  EXPECT_DOUBLE_EQ(pool[b].arrival, 2.0);
}

TEST(TaskTest, MissedDeadlineIsStrict) {
  TaskPool pool;
  const auto id = pool.create(0, 0.0, 5.0);
  EXPECT_FALSE(pool[id].missedDeadline(4.9));
  EXPECT_FALSE(pool[id].missedDeadline(5.0));
  EXPECT_TRUE(pool[id].missedDeadline(5.1));
}

TEST(TaskTest, TerminalClassification) {
  using hcs::sim::isTerminal;
  EXPECT_FALSE(isTerminal(TaskStatus::Created));
  EXPECT_FALSE(isTerminal(TaskStatus::Batched));
  EXPECT_FALSE(isTerminal(TaskStatus::Queued));
  EXPECT_FALSE(isTerminal(TaskStatus::Running));
  EXPECT_TRUE(isTerminal(TaskStatus::CompletedOnTime));
  EXPECT_TRUE(isTerminal(TaskStatus::CompletedLate));
  EXPECT_TRUE(isTerminal(TaskStatus::DroppedReactive));
  EXPECT_TRUE(isTerminal(TaskStatus::DroppedProactive));
}

TEST(TaskTest, StatusNamesAreDistinct) {
  EXPECT_EQ(hcs::sim::toString(TaskStatus::Running), "Running");
  EXPECT_EQ(hcs::sim::toString(TaskStatus::DroppedProactive),
            "DroppedProactive");
}

// --- EventQueue --------------------------------------------------------------

TEST(EventQueueTest, PopsInTimeOrder) {
  EventQueue q;
  q.push(5.0, EventKind::TaskArrival, 1);
  q.push(2.0, EventKind::TaskArrival, 2);
  q.push(8.0, EventKind::TaskCompletion, 3, 0);
  EXPECT_EQ(q.pop().task, 2);
  EXPECT_EQ(q.pop().task, 1);
  const auto e = q.pop();
  EXPECT_EQ(e.task, 3);
  EXPECT_EQ(e.machine, 0);
  EXPECT_TRUE(q.empty());
}

TEST(EventQueueTest, BreaksTimeTiesByInsertionOrder) {
  EventQueue q;
  q.push(3.0, EventKind::TaskArrival, 10);
  q.push(3.0, EventKind::TaskArrival, 11);
  q.push(3.0, EventKind::TaskArrival, 12);
  EXPECT_EQ(q.pop().task, 10);
  EXPECT_EQ(q.pop().task, 11);
  EXPECT_EQ(q.pop().task, 12);
}

TEST(EventQueueTest, CancelledEventsAreSkipped) {
  EventQueue q;
  const auto seq = q.nextSeq();
  q.push(1.0, EventKind::TaskCompletion, 1, 0);
  q.push(2.0, EventKind::TaskArrival, 2);
  q.cancel(seq);
  EXPECT_EQ(q.pop().task, 2);
  EXPECT_FALSE(q.tryPop().has_value());
}

TEST(EventQueueTest, TryPopOnAllCancelledReturnsNullopt) {
  EventQueue q;
  const auto seq = q.nextSeq();
  q.push(1.0, EventKind::TaskCompletion, 1, 0);
  q.cancel(seq);
  EXPECT_FALSE(q.tryPop().has_value());
  EXPECT_THROW(q.pop(), std::logic_error);
}

TEST(EventQueueTest, CancelRemovesTheEntryEagerly) {
  EventQueue q;
  const auto seq = q.nextSeq();
  q.push(1.0, EventKind::TaskCompletion, 1, 0);
  q.cancel(seq);
  // The entry left the heap at cancel time: no tombstone survives to be
  // consumed by a later pop.
  EXPECT_TRUE(q.empty());
  EXPECT_EQ(q.size(), 0u);
  EXPECT_EQ(q.pendingCancellations(), 0u);
  EXPECT_FALSE(q.tryPop().has_value());
  q.push(2.0, EventKind::TaskArrival, 2);
  EXPECT_EQ(q.pop().task, 2);
}

TEST(EventQueueTest, CancelUnknownSeqIsHarmless) {
  EventQueue q;
  q.push(1.0, EventKind::TaskArrival, 1);
  q.cancel(9999);  // never pushed
  q.cancel(9999);  // and twice — duplicate cancellations collapse
  EXPECT_EQ(q.pendingCancellations(), 0u);
  EXPECT_EQ(q.pop().task, 1);  // real events keep flowing
  EXPECT_FALSE(q.tryPop().has_value());
  // A stray seq records nothing, so it can never suppress a future event.
  const auto futureSeq = q.nextSeq();
  q.cancel(futureSeq);
  q.push(3.0, EventKind::TaskArrival, 7);
  EXPECT_EQ(q.pop().task, 7);
  EXPECT_EQ(q.pendingCancellations(), 0u);
}

TEST(EventQueueTest, DoubleCancelOfOneEventSkipsItOnce) {
  EventQueue q;
  const auto seq = q.nextSeq();
  q.push(1.0, EventKind::TaskCompletion, 1, 0);
  q.cancel(seq);
  q.cancel(seq);
  q.push(2.0, EventKind::TaskArrival, 2);
  EXPECT_EQ(q.pop().task, 2);
  EXPECT_TRUE(q.empty());
}

TEST(EventQueueTest, DrainAllWithInterleavedCancellations) {
  EventQueue q;
  std::vector<std::uint64_t> seqs;
  for (int i = 0; i < 20; ++i) {
    seqs.push_back(q.nextSeq());
    q.push(static_cast<double>(20 - i), EventKind::TaskArrival, i);
  }
  // Cancel every third event.
  for (std::size_t i = 0; i < seqs.size(); i += 3) q.cancel(seqs[i]);
  std::vector<hcs::sim::TaskId> popped;
  while (auto e = q.tryPop()) popped.push_back(e->task);
  EXPECT_EQ(popped.size(), 13u);
  // Earliest time first = highest task id first (times were descending),
  // with multiples of three missing.
  for (std::size_t i = 1; i < popped.size(); ++i) {
    EXPECT_GT(popped[i - 1], popped[i]);
  }
  for (hcs::sim::TaskId id : popped) EXPECT_NE(id % 3, 0);
  EXPECT_TRUE(q.empty());
  EXPECT_EQ(q.pendingCancellations(), 0u);
}

TEST(EventQueueTest, TopSkipsNothingAfterCancellingTheEarliest) {
  EventQueue q;
  const auto seq = q.nextSeq();
  q.push(1.0, EventKind::TaskCompletion, 1, 0);
  q.push(2.0, EventKind::TaskArrival, 2);
  EXPECT_EQ(q.top().task, 1);
  q.cancel(seq);
  // In-place removal repairs the heap immediately: top() is always live.
  EXPECT_EQ(q.top().task, 2);
  EXPECT_EQ(q.size(), 1u);
}

TEST(EventQueueTest, RandomizedPushPopCancelMatchesSortedOrder) {
  // Model check against the (time, seq) contract: interleave pushes, pops,
  // and cancellations driven by a deterministic LCG, mirroring the queue
  // into a plain vector, and require the pop sequences to agree exactly.
  EventQueue q;
  std::vector<hcs::sim::Event> alive;  // mirror of live events
  std::uint64_t rng = 0x9e3779b97f4a7c15ull;
  auto nextRand = [&rng]() {
    rng = rng * 6364136223846793005ull + 1442695040888963407ull;
    return rng >> 33;
  };
  for (int step = 0; step < 4000; ++step) {
    const auto r = nextRand() % 100;
    if (r < 55 || q.empty()) {
      // Coarse times force (time, seq) ties often.
      const auto time = static_cast<double>(nextRand() % 16);
      const auto seq = q.nextSeq();
      q.push(time, EventKind::TaskArrival,
             static_cast<hcs::sim::TaskId>(step));
      alive.push_back(hcs::sim::Event{time, EventKind::TaskArrival,
                                      static_cast<hcs::sim::TaskId>(step),
                                      hcs::sim::kInvalidMachine, seq});
    } else if (r < 80) {
      const auto expect = std::min_element(
          alive.begin(), alive.end(), [](const auto& a, const auto& b) {
            return a.time != b.time ? a.time < b.time : a.seq < b.seq;
          });
      const hcs::sim::Event got = q.pop();
      EXPECT_EQ(got.seq, expect->seq);
      EXPECT_EQ(got.task, expect->task);
      alive.erase(expect);
    } else {
      // Cancel a random live event (sometimes a stale/future seq).
      const auto target = nextRand() % (alive.size() + 2);
      if (target < alive.size()) {
        q.cancel(alive[target].seq);
        alive.erase(alive.begin() + static_cast<std::ptrdiff_t>(target));
      } else {
        q.cancel(q.nextSeq() + nextRand() % 7);
      }
    }
    ASSERT_EQ(q.size(), alive.size());
    ASSERT_EQ(q.pendingCancellations(), 0u);
  }
  std::vector<std::uint64_t> seqs;
  while (auto e = q.tryPop()) seqs.push_back(e->seq);
  std::sort(alive.begin(), alive.end(), [](const auto& a, const auto& b) {
    return a.time != b.time ? a.time < b.time : a.seq < b.seq;
  });
  ASSERT_EQ(seqs.size(), alive.size());
  for (std::size_t i = 0; i < seqs.size(); ++i) {
    EXPECT_EQ(seqs[i], alive[i].seq);
  }
}

// --- Machine: dispatch / completion lifecycle --------------------------------

FakeModel twoTypeModel() {
  // Type 0 runs in 4 units, type 1 in 2 units on the single machine.
  return FakeModel::deterministic({{4.0}, {2.0}});
}

TEST(MachineTest, DispatchToIdleMachineStartsImmediately) {
  TaskPool pool;
  const auto t = pool.create(0, 0.0, 100.0);
  const FakeModel model = twoTypeModel();
  Machine m(0, 1.0);
  EXPECT_TRUE(m.dispatch(t, 0.0, pool, model));
  EXPECT_TRUE(m.busy());
  EXPECT_EQ(m.runningTask(), t);
  EXPECT_EQ(pool[t].status, TaskStatus::Running);
  EXPECT_EQ(m.queueLength(), 0u);
}

TEST(MachineTest, DispatchToBusyMachineQueues) {
  TaskPool pool;
  const auto a = pool.create(0, 0.0, 100.0);
  const auto b = pool.create(1, 0.0, 100.0);
  const FakeModel model = twoTypeModel();
  Machine m(0, 1.0);
  m.dispatch(a, 0.0, pool, model);
  EXPECT_FALSE(m.dispatch(b, 0.0, pool, model));
  EXPECT_EQ(pool[b].status, TaskStatus::Queued);
  EXPECT_EQ(m.queueLength(), 1u);
}

TEST(MachineTest, CompleteRunningPromotesFifo) {
  TaskPool pool;
  const auto a = pool.create(0, 0.0, 100.0);
  const auto b = pool.create(1, 0.0, 100.0);
  const auto c = pool.create(1, 0.0, 100.0);
  const FakeModel model = twoTypeModel();
  Machine m(0, 1.0);
  m.dispatch(a, 0.0, pool, model);
  m.dispatch(b, 0.0, pool, model);
  m.dispatch(c, 0.0, pool, model);
  const auto promoted = m.completeRunning(4.0, pool, model);
  EXPECT_EQ(promoted, b);
  EXPECT_EQ(pool[b].status, TaskStatus::Running);
  EXPECT_DOUBLE_EQ(pool[b].startTime, 4.0);
  EXPECT_EQ(m.queueLength(), 1u);
  EXPECT_DOUBLE_EQ(m.busyTime(), 4.0);
}

TEST(MachineTest, CompleteOnIdleThrows) {
  TaskPool pool;
  const FakeModel model = twoTypeModel();
  Machine m(0, 1.0);
  EXPECT_THROW(m.completeRunning(1.0, pool, model), std::logic_error);
}

TEST(MachineTest, RemoveQueuedDropsOnlyQueuedTasks) {
  TaskPool pool;
  const auto a = pool.create(0, 0.0, 100.0);
  const auto b = pool.create(1, 0.0, 100.0);
  const FakeModel model = twoTypeModel();
  Machine m(0, 1.0);
  m.dispatch(a, 0.0, pool, model);
  m.dispatch(b, 0.0, pool, model);
  m.removeQueued(b, 0.0, pool, model);
  EXPECT_EQ(m.queueLength(), 0u);
  // The running task cannot be removed this way.
  EXPECT_THROW(m.removeQueued(a, 0.0, pool, model), std::logic_error);
}

TEST(MachineTest, AbortRunningLeavesQueueForTheScheduler) {
  TaskPool pool;
  const auto a = pool.create(0, 0.0, 100.0);
  const auto b = pool.create(1, 0.0, 100.0);
  const FakeModel model = twoTypeModel();
  Machine m(0, 1.0);
  m.dispatch(a, 0.0, pool, model);
  m.dispatch(b, 0.0, pool, model);
  m.abortRunning(2.0, pool, model);
  // No automatic promotion: the scheduler's pruning passes inspect the
  // queue head before startNextIfIdle() runs it.
  EXPECT_FALSE(m.busy());
  EXPECT_EQ(m.queueLength(), 1u);
  EXPECT_DOUBLE_EQ(m.busyTime(), 2.0);
  EXPECT_EQ(m.startNextIfIdle(2.0, pool, model), b);
  EXPECT_EQ(m.runningTask(), b);
}

TEST(MachineTest, FinishThenStartNextSplitsCompletion) {
  TaskPool pool;
  const auto a = pool.create(0, 0.0, 100.0);
  const auto b = pool.create(1, 0.0, 100.0);
  const FakeModel model = twoTypeModel();
  Machine m(0, 1.0);
  m.dispatch(a, 0.0, pool, model);
  m.dispatch(b, 0.0, pool, model);
  m.finishRunning(4.0, pool, model);
  EXPECT_FALSE(m.busy());
  EXPECT_EQ(m.queueLength(), 1u);
  // A dispatch to a transiently idle machine must respect FIFO: the new
  // task queues behind b rather than jumping ahead.
  const auto c = pool.create(1, 4.0, 100.0);
  EXPECT_FALSE(m.dispatch(c, 4.0, pool, model));
  EXPECT_EQ(m.startNextIfIdle(4.0, pool, model), b);
  // Idle with empty queue: startNextIfIdle is a no-op.
  Machine idle(1, 1.0);
  EXPECT_EQ(idle.startNextIfIdle(0.0, pool, model), hcs::sim::kInvalidTask);
}

// --- Machine: PCT tracking (Eq. 1) -------------------------------------------

TEST(MachinePctTest, IdleMachineAvailabilityIsPointMassAtNow) {
  TaskPool pool;
  const FakeModel model = twoTypeModel();
  Machine m(0, 1.0);
  const DiscretePmf pct = m.availabilityPct(7.0, pool, model);
  EXPECT_EQ(pct.size(), 1u);
  EXPECT_DOUBLE_EQ(pct.minTime(), 7.0);
}

TEST(MachinePctTest, TailPctOfEmptyMachineIsNow) {
  TaskPool pool;
  const FakeModel model = twoTypeModel();
  Machine m(0, 1.0);
  EXPECT_DOUBLE_EQ(m.tailPct(3.0, pool, model).mean(), 3.0);
}

TEST(MachinePctTest, TailPctAccumulatesQueuedWork) {
  TaskPool pool;
  const auto a = pool.create(0, 0.0, 100.0);  // 4 units
  const auto b = pool.create(1, 0.0, 100.0);  // 2 units
  const FakeModel model = twoTypeModel();
  Machine m(0, 1.0);
  m.dispatch(a, 0.0, pool, model);
  m.dispatch(b, 0.0, pool, model);
  // Deterministic model: completion of b at 4 + 2 = 6.
  const DiscretePmf tail = m.tailPct(0.0, pool, model);
  EXPECT_DOUBLE_EQ(tail.mean(), 6.0);
}

TEST(MachinePctTest, StochasticTailMatchesEq1Convolution) {
  // Type 0: P(2)=0.5, P(4)=0.5.  Two queued tasks of type 0 dispatched at
  // t=0: completion of the second is the two-fold convolution.
  std::vector<std::vector<DiscretePmf>> pets;
  pets.push_back({DiscretePmf(2, {0.5, 0.0, 0.5})});
  const FakeModel model{std::move(pets)};
  TaskPool pool;
  const auto a = pool.create(0, 0.0, 100.0);
  const auto b = pool.create(0, 0.0, 100.0);
  Machine m(0, 1.0);
  m.dispatch(a, 0.0, pool, model);
  m.dispatch(b, 0.0, pool, model);
  const DiscretePmf tail = m.tailPct(0.0, pool, model);
  // Sum of two {2 w.p. .5, 4 w.p. .5}: 4 w.p .25, 6 w.p .5, 8 w.p .25.
  EXPECT_EQ(tail.firstBin(), 4);
  EXPECT_EQ(tail.lastBin(), 8);
  EXPECT_NEAR(tail.probs()[0], 0.25, 1e-12);
  EXPECT_NEAR(tail.probs()[2], 0.50, 1e-12);
  EXPECT_NEAR(tail.probs()[4], 0.25, 1e-12);
}

TEST(MachinePctTest, TailBoundsBracketTailPct) {
  std::vector<std::vector<DiscretePmf>> pets;
  pets.push_back({DiscretePmf(2, {0.5, 0.0, 0.5})});
  const FakeModel model{std::move(pets)};
  for (bool trackTail : {true, false}) {
    TaskPool pool;
    const auto a = pool.create(0, 0.0, 100.0);
    const auto b = pool.create(0, 0.0, 100.0);
    const auto c = pool.create(0, 0.0, 100.0);
    Machine m(0, 1.0, trackTail);
    // Empty machine: bounds collapse to the availability point mass.
    EXPECT_EQ(m.tailBounds(3.0, pool, model),
              (std::pair<std::int64_t, std::int64_t>{3, 3}));
    m.dispatch(a, 0.0, pool, model);
    m.dispatch(b, 0.0, pool, model);
    m.dispatch(c, 0.0, pool, model);
    const DiscretePmf tail = m.tailPct(0.0, pool, model);
    auto [lo, hi] = m.tailBounds(0.0, pool, model);
    EXPECT_EQ(lo, tail.firstBin());
    EXPECT_EQ(hi, tail.lastBin());
    // After a completion (dirty tail in the lazy regime), the bounds must
    // still bracket what tailPct would materialize — without forcing the
    // rebuild first.
    m.completeRunning(2.0, pool, model);
    auto [lo2, hi2] = m.tailBounds(2.0, pool, model);
    const DiscretePmf rebuilt = m.tailPct(2.0, pool, model);
    EXPECT_LE(lo2, rebuilt.firstBin());
    EXPECT_GE(hi2, rebuilt.lastBin());
  }
}

TEST(MachinePctTest, RunningTaskAvailabilityIsConditionedOnElapsed) {
  // Type 0: P(2)=0.5, P(4)=0.5.  At t=3 (3 units elapsed) the running task
  // can only be the 4-unit outcome: remaining = 1 unit, so the machine is
  // free at exactly t=4.
  std::vector<std::vector<DiscretePmf>> pets;
  pets.push_back({DiscretePmf(2, {0.5, 0.0, 0.5})});
  const FakeModel model{std::move(pets)};
  TaskPool pool;
  const auto a = pool.create(0, 0.0, 100.0);
  Machine m(0, 1.0);
  m.dispatch(a, 0.0, pool, model);
  const DiscretePmf avail = m.availabilityPct(3.0, pool, model);
  EXPECT_EQ(avail.size(), 1u);
  EXPECT_DOUBLE_EQ(avail.minTime(), 4.0);
}

TEST(MachinePctTest, DropReducesCompoundUncertainty) {
  // Section II: removing a queued task shortens the convolution chain and
  // tightens the completion distribution of tasks behind it.
  std::vector<std::vector<DiscretePmf>> pets;
  pets.push_back({DiscretePmf(1, {0.25, 0.25, 0.25, 0.25})});
  const FakeModel model{std::move(pets)};
  TaskPool pool;
  const auto a = pool.create(0, 0.0, 100.0);
  const auto b = pool.create(0, 0.0, 100.0);
  const auto c = pool.create(0, 0.0, 100.0);
  Machine m(0, 1.0);
  m.dispatch(a, 0.0, pool, model);
  m.dispatch(b, 0.0, pool, model);
  m.dispatch(c, 0.0, pool, model);
  const double varBefore = m.tailPct(0.0, pool, model).variance();
  m.removeQueued(b, 0.0, pool, model);
  const double varAfter = m.tailPct(0.0, pool, model).variance();
  EXPECT_LT(varAfter, varBefore);
}

TEST(MachinePctTest, UntrackedTailMatchesTrackedTail) {
  std::vector<std::vector<DiscretePmf>> pets1, pets2;
  pets1.push_back({DiscretePmf(1, {0.5, 0.3, 0.2})});
  pets2.push_back({DiscretePmf(1, {0.5, 0.3, 0.2})});
  const FakeModel model1{std::move(pets1)};
  TaskPool pool1, pool2;
  Machine tracked(0, 1.0, /*trackTail=*/true);
  Machine lazy(0, 1.0, /*trackTail=*/false);
  for (int i = 0; i < 3; ++i) {
    const auto t1 = pool1.create(0, 0.0, 100.0);
    const auto t2 = pool2.create(0, 0.0, 100.0);
    tracked.dispatch(t1, 0.0, pool1, model1);
    lazy.dispatch(t2, 0.0, pool2, model1);
  }
  EXPECT_EQ(tracked.tailPct(0.0, pool1, model1),
            lazy.tailPct(0.0, pool2, model1));
}

TEST(MachinePctTest, ChainPctsAlignWithQueuePositions) {
  std::vector<std::vector<DiscretePmf>> pets;
  pets.push_back({DiscretePmf::pointMass(3.0)});
  const FakeModel model{std::move(pets)};
  TaskPool pool;
  Machine m(0, 1.0);
  for (int i = 0; i < 3; ++i) {
    m.dispatch(pool.create(0, 0.0, 100.0), 0.0, pool, model);
  }
  const auto chain = m.chainPcts(0.0, pool, model);
  // [running, q0, q1]: completions at 3, 6, 9.
  ASSERT_EQ(chain.size(), 3u);
  EXPECT_DOUBLE_EQ(chain[0].mean(), 3.0);
  EXPECT_DOUBLE_EQ(chain[1].mean(), 6.0);
  EXPECT_DOUBLE_EQ(chain[2].mean(), 9.0);
}

TEST(MachinePctTest, ExpectedReadyCombinesRunningAndQueued) {
  TaskPool pool;
  const auto a = pool.create(0, 0.0, 100.0);  // 4 units
  const auto b = pool.create(1, 0.0, 100.0);  // 2 units
  const FakeModel model = twoTypeModel();
  Machine m(0, 1.0);
  m.dispatch(a, 0.0, pool, model);
  m.dispatch(b, 0.0, pool, model);
  EXPECT_DOUBLE_EQ(m.expectedReady(0.0, pool, model), 6.0);
  // At t=1 the running task has 3 units left.
  EXPECT_DOUBLE_EQ(m.expectedReady(1.0, pool, model), 6.0);
  // Idle machine is ready now.
  Machine idle(1, 1.0);
  EXPECT_DOUBLE_EQ(idle.expectedReady(5.0, pool, model), 5.0);
}

TEST(MachineTest, RejectsNonPositiveBinWidth) {
  EXPECT_THROW(Machine(0, 0.0), std::invalid_argument);
  EXPECT_THROW(Machine(0, -1.0), std::invalid_argument);
}

// --- Metrics ------------------------------------------------------------------

Task makeTerminal(hcs::sim::TaskId id, hcs::sim::TaskType type,
                  TaskStatus status) {
  Task t;
  t.id = id;
  t.type = type;
  t.status = status;
  return t;
}

TEST(MetricsTest, CountsTerminalOutcomes) {
  Metrics metrics(2);
  metrics.recordTerminal(makeTerminal(0, 0, TaskStatus::CompletedOnTime));
  metrics.recordTerminal(makeTerminal(1, 0, TaskStatus::CompletedLate));
  metrics.recordTerminal(makeTerminal(2, 1, TaskStatus::DroppedReactive));
  metrics.recordTerminal(makeTerminal(3, 1, TaskStatus::DroppedProactive));
  EXPECT_EQ(metrics.completedOnTime(), 1u);
  EXPECT_EQ(metrics.completedLate(), 1u);
  EXPECT_EQ(metrics.droppedReactive(), 1u);
  EXPECT_EQ(metrics.droppedProactive(), 1u);
  EXPECT_EQ(metrics.countedTasks(), 4u);
  EXPECT_DOUBLE_EQ(metrics.robustnessPercent(), 25.0);
  EXPECT_EQ(metrics.perType()[0].completedOnTime, 1u);
  EXPECT_EQ(metrics.perType()[1].droppedProactive, 1u);
}

TEST(MetricsTest, RejectsNonTerminalTasks) {
  Metrics metrics(1);
  EXPECT_THROW(metrics.recordTerminal(makeTerminal(0, 0, TaskStatus::Running)),
               std::logic_error);
}

TEST(MetricsTest, CountedMaskExcludesWarmupTasks) {
  Metrics metrics(1);
  metrics.setCounted({false, true, true});
  metrics.recordTerminal(makeTerminal(0, 0, TaskStatus::CompletedOnTime));
  metrics.recordTerminal(makeTerminal(1, 0, TaskStatus::CompletedOnTime));
  metrics.recordTerminal(makeTerminal(2, 0, TaskStatus::DroppedReactive));
  EXPECT_EQ(metrics.countedTasks(), 2u);
  EXPECT_DOUBLE_EQ(metrics.robustnessPercent(), 50.0);
}

TEST(MetricsTest, EmptyMetricsHasZeroRobustness) {
  Metrics metrics(1);
  EXPECT_DOUBLE_EQ(metrics.robustnessPercent(), 0.0);
  EXPECT_THROW(Metrics(0), std::invalid_argument);
}

}  // namespace
