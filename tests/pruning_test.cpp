// Tests for the pruning mechanism's policy modules (Section IV, Fig. 4/5):
// Accounting, Toggle, Fairness, and the Pruner that composes them.

#include <gtest/gtest.h>

#include "pruning/accounting.h"
#include "pruning/config.h"
#include "pruning/fairness.h"
#include "pruning/pruner.h"
#include "pruning/toggle.h"

namespace {

using hcs::pruning::Accounting;
using hcs::pruning::Fairness;
using hcs::pruning::Pruner;
using hcs::pruning::PruningConfig;
using hcs::pruning::Toggle;
using hcs::pruning::ToggleMode;

// --- Accounting -----------------------------------------------------------------

TEST(AccountingTest, HarvestReturnsIntervalAndResets) {
  Accounting acc(3);
  acc.recordOnTimeCompletion(0);
  acc.recordOnTimeCompletion(2);
  acc.recordDeadlineMiss(1);
  acc.recordDeadlineMiss(1);

  const auto snapshot = acc.harvest();
  EXPECT_EQ(snapshot.onTimeTypes, (std::vector<int>{0, 2}));
  EXPECT_EQ(snapshot.deadlineMisses, 2u);

  const auto empty = acc.harvest();
  EXPECT_TRUE(empty.onTimeTypes.empty());
  EXPECT_EQ(empty.deadlineMisses, 0u);
}

TEST(AccountingTest, LifetimeTotalsSurviveHarvest) {
  Accounting acc(2);
  acc.recordOnTimeCompletion(0);
  acc.recordDeadlineMiss(1);
  acc.recordProactiveDrop(1);
  acc.harvest();
  acc.recordOnTimeCompletion(0);
  EXPECT_EQ(acc.totalOnTime()[0], 2u);
  EXPECT_EQ(acc.totalMisses()[1], 1u);
  EXPECT_EQ(acc.totalProactiveDrops()[1], 1u);
}

TEST(AccountingTest, RejectsZeroTypes) {
  EXPECT_THROW(Accounting(0), std::invalid_argument);
}

// --- Toggle ----------------------------------------------------------------------

TEST(ToggleTest, NoDroppingNeverEngages) {
  const Toggle t(ToggleMode::NoDropping, 1);
  EXPECT_FALSE(t.engageDropping(0));
  EXPECT_FALSE(t.engageDropping(1000));
}

TEST(ToggleTest, AlwaysDroppingAlwaysEngages) {
  const Toggle t(ToggleMode::AlwaysDropping, 1);
  EXPECT_TRUE(t.engageDropping(0));
  EXPECT_TRUE(t.engageDropping(5));
}

TEST(ToggleTest, ReactiveEngagesAtThreshold) {
  const Toggle t(ToggleMode::Reactive, 3);
  EXPECT_FALSE(t.engageDropping(0));
  EXPECT_FALSE(t.engageDropping(2));
  EXPECT_TRUE(t.engageDropping(3));
  EXPECT_TRUE(t.engageDropping(10));
}

TEST(ToggleTest, PaperDefaultEngagesOnOneMiss) {
  // §V-C: "engages task dropping only in observation of at least one task
  // missing its deadline, since the previous mapping event."
  const Toggle t(ToggleMode::Reactive, 1);
  EXPECT_FALSE(t.engageDropping(0));
  EXPECT_TRUE(t.engageDropping(1));
}

TEST(ToggleTest, ReactiveRejectsZeroAlpha) {
  EXPECT_THROW(Toggle(ToggleMode::Reactive, 0), std::invalid_argument);
}

// --- Fairness ----------------------------------------------------------------------

TEST(FairnessTest, ScoresStartAtZero) {
  const Fairness f(4, 0.05, 0.45);
  for (int k = 0; k < 4; ++k) {
    EXPECT_DOUBLE_EQ(f.score(k), 0.0);
    EXPECT_DOUBLE_EQ(f.effectiveThreshold(k, 0.5), 0.5);
  }
}

TEST(FairnessTest, DropsRaiseScoreAndLowerTheBar) {
  Fairness f(2, 0.05, 0.45);
  f.recordDrop(0);
  f.recordDrop(0);
  EXPECT_NEAR(f.score(0), 0.10, 1e-12);
  // Suffering type 0 now has a *laxer* pruning bar (0.40 instead of 0.50).
  EXPECT_NEAR(f.effectiveThreshold(0, 0.5), 0.40, 1e-12);
  EXPECT_DOUBLE_EQ(f.effectiveThreshold(1, 0.5), 0.50);
}

TEST(FairnessTest, CompletionsRecoverSufferageButFloorAtZero) {
  Fairness f(2, 0.05, 0.45);
  // Without prior suffering there is nothing to recover: the bar stays at
  // beta (a negative score would push the bar above 1 and starve thriving
  // types outright).
  f.recordOnTimeCompletion(1);
  EXPECT_DOUBLE_EQ(f.score(1), 0.0);
  EXPECT_DOUBLE_EQ(f.effectiveThreshold(1, 0.5), 0.5);
  // After drops, completions walk the score back down.
  f.recordDrop(1);
  f.recordDrop(1);
  f.recordOnTimeCompletion(1);
  EXPECT_NEAR(f.score(1), 0.05, 1e-12);
  EXPECT_NEAR(f.effectiveThreshold(1, 0.5), 0.45, 1e-12);
}

TEST(FairnessTest, ScoresAreClampedToZeroAndCap) {
  Fairness f(1, 0.2, 0.45);
  for (int i = 0; i < 10; ++i) f.recordDrop(0);
  EXPECT_DOUBLE_EQ(f.score(0), 0.45);
  for (int i = 0; i < 20; ++i) f.recordOnTimeCompletion(0);
  EXPECT_DOUBLE_EQ(f.score(0), 0.0);
}

TEST(FairnessTest, DropAndCompletionCancelOut) {
  Fairness f(1, 0.05, 0.45);
  f.recordDrop(0);
  f.recordOnTimeCompletion(0);
  EXPECT_NEAR(f.score(0), 0.0, 1e-12);
}

TEST(FairnessTest, RejectsBadParameters) {
  EXPECT_THROW(Fairness(0, 0.05, 0.45), std::invalid_argument);
  EXPECT_THROW(Fairness(1, -0.1, 0.45), std::invalid_argument);
  EXPECT_THROW(Fairness(1, 0.05, -0.1), std::invalid_argument);
}

// --- Pruner -------------------------------------------------------------------------

Accounting::Snapshot snapshotWithMisses(std::size_t misses) {
  Accounting::Snapshot s;
  s.deadlineMisses = misses;
  return s;
}

TEST(PrunerTest, DisabledPrunerNeverActs) {
  Pruner pruner(PruningConfig::disabled(), 2);
  pruner.beginMappingEvent(snapshotWithMisses(100));
  EXPECT_FALSE(pruner.droppingEngaged());
  EXPECT_FALSE(pruner.shouldDrop(0, 0.0));
  EXPECT_FALSE(pruner.shouldDefer(0, 0.0));
}

TEST(PrunerTest, DefersBelowThresholdRegardlessOfToggle) {
  PruningConfig config;  // threshold 0.5, reactive toggle
  Pruner pruner(config, 2);
  pruner.beginMappingEvent(snapshotWithMisses(0));
  EXPECT_TRUE(pruner.shouldDefer(0, 0.3));
  EXPECT_TRUE(pruner.shouldDefer(0, 0.5));  // "chance <= beta" is pruned
  EXPECT_FALSE(pruner.shouldDefer(0, 0.51));
}

TEST(PrunerTest, DropsOnlyWhenToggleEngaged) {
  PruningConfig config;
  Pruner pruner(config, 2);
  pruner.beginMappingEvent(snapshotWithMisses(0));
  EXPECT_FALSE(pruner.droppingEngaged());
  EXPECT_FALSE(pruner.shouldDrop(0, 0.1));
  pruner.beginMappingEvent(snapshotWithMisses(1));
  EXPECT_TRUE(pruner.droppingEngaged());
  EXPECT_TRUE(pruner.shouldDrop(0, 0.1));
  EXPECT_FALSE(pruner.shouldDrop(0, 0.9));
}

TEST(PrunerTest, AlwaysToggleDropsWithoutMisses) {
  PruningConfig config;
  config.toggle = ToggleMode::AlwaysDropping;
  Pruner pruner(config, 1);
  pruner.beginMappingEvent(snapshotWithMisses(0));
  EXPECT_TRUE(pruner.droppingEngaged());
}

TEST(PrunerTest, NoDropToggleNeverDrops) {
  PruningConfig config;
  config.toggle = ToggleMode::NoDropping;
  Pruner pruner(config, 1);
  pruner.beginMappingEvent(snapshotWithMisses(50));
  EXPECT_FALSE(pruner.droppingEngaged());
  // Deferring still applies — the two operations are independent.
  EXPECT_TRUE(pruner.shouldDefer(0, 0.2));
}

TEST(PrunerTest, DeferCanBeDisabledIndependently) {
  PruningConfig config;
  config.deferEnabled = false;
  Pruner pruner(config, 1);
  pruner.beginMappingEvent(snapshotWithMisses(1));
  EXPECT_FALSE(pruner.shouldDefer(0, 0.1));
  EXPECT_TRUE(pruner.shouldDrop(0, 0.1));
}

TEST(PrunerTest, FairnessOffsetsTheBarPerType) {
  // Fig. 5 step 6: drop when chance <= beta - gamma_k.
  PruningConfig config;
  config.fairnessFactor = 0.2;
  Pruner pruner(config, 2);
  pruner.recordDrop(0);  // gamma_0 = 0.2 -> bar 0.3
  pruner.beginMappingEvent(snapshotWithMisses(1));
  EXPECT_FALSE(pruner.shouldDrop(0, 0.35));  // above the lax bar
  EXPECT_TRUE(pruner.shouldDrop(1, 0.35));   // below the default bar
  EXPECT_TRUE(pruner.shouldDrop(0, 0.25));
}

TEST(PrunerTest, OnTimeCompletionsRecoverSufferage) {
  // Step 2: completions since the last event walk gamma_k back toward
  // zero, withdrawing the lax bar once a suffering type recovers.
  PruningConfig config;
  config.fairnessFactor = 0.2;
  Pruner pruner(config, 2);
  pruner.recordDrop(0);
  pruner.recordDrop(0);  // gamma_0 = 0.4 -> bar 0.1
  pruner.beginMappingEvent(snapshotWithMisses(1));
  EXPECT_FALSE(pruner.shouldDrop(0, 0.3));
  Accounting::Snapshot snapshot;
  snapshot.onTimeTypes = {0, 0};  // gamma_0 back to 0 -> bar 0.5
  snapshot.deadlineMisses = 1;
  pruner.beginMappingEvent(snapshot);
  EXPECT_TRUE(pruner.shouldDrop(0, 0.3));
}

TEST(PrunerTest, DisabledPrunerIgnoresCompletionSnapshots) {
  Pruner pruner(PruningConfig::disabled(), 1);
  Accounting::Snapshot snapshot;
  snapshot.onTimeTypes = {0};
  pruner.beginMappingEvent(snapshot);
  EXPECT_DOUBLE_EQ(pruner.fairness().score(0), 0.0);
}

TEST(PrunerTest, RejectsThresholdOutsideUnitInterval) {
  PruningConfig config;
  config.threshold = 1.5;
  EXPECT_THROW(Pruner(config, 1), std::invalid_argument);
  config.threshold = -0.1;
  EXPECT_THROW(Pruner(config, 1), std::invalid_argument);
}

TEST(PrunerTest, ZeroThresholdPrunesOnlyHopelessTasks) {
  // Fig. 8's 0% point: only tasks with literally zero chance are pruned.
  PruningConfig config;
  config.threshold = 0.0;
  Pruner pruner(config, 1);
  pruner.beginMappingEvent(snapshotWithMisses(1));
  EXPECT_TRUE(pruner.shouldDefer(0, 0.0));
  EXPECT_FALSE(pruner.shouldDefer(0, 0.01));
}

}  // namespace
