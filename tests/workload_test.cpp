// Tests for workload synthesis: the PET matrix (paper recipe), arrival
// patterns (constant / spiky, Fig. 6), deadline assignment (Eq. 4), and
// trace persistence.

#include <gtest/gtest.h>

#include <cmath>
#include <memory>
#include <sstream>

#include "stats/running_stats.h"
#include "workload/arrival.h"
#include "workload/deadline.h"
#include "workload/pet_matrix.h"
#include "workload/trace_io.h"
#include "workload/workload.h"

namespace {

using hcs::prob::Rng;
using hcs::workload::Arrival;
using hcs::workload::ArrivalPattern;
using hcs::workload::ArrivalSpec;
using hcs::workload::BoundExecutionModel;
using hcs::workload::DeadlineSpec;
using hcs::workload::PetMatrix;
using hcs::workload::PetSynthesisConfig;
using hcs::workload::RateProfile;
using hcs::workload::Workload;

// --- PET matrix ---------------------------------------------------------------

TEST(PetMatrixTest, SpecLikeHasPaperDimensions) {
  const PetMatrix pet = PetMatrix::specLike(1);
  EXPECT_EQ(pet.numTaskTypes(), 12);
  EXPECT_EQ(pet.numMachineTypes(), 8);
}

TEST(PetMatrixTest, SpecLikeIsDeterministicPerSeed) {
  const PetMatrix a = PetMatrix::specLike(7);
  const PetMatrix b = PetMatrix::specLike(7);
  for (int t = 0; t < a.numTaskTypes(); ++t) {
    for (int j = 0; j < a.numMachineTypes(); ++j) {
      EXPECT_EQ(a.pet(t, j), b.pet(t, j));
    }
  }
  const PetMatrix c = PetMatrix::specLike(8);
  EXPECT_NE(a.pet(0, 0), c.pet(0, 0));
}

TEST(PetMatrixTest, SpecLikeIsInconsistentlyHeterogeneous) {
  // Qualitative heterogeneity: machine orderings differ between task types
  // (task-machine affinity) — the defining property of an inconsistent HC
  // system (§I).  With affinity jitter in [0.5, 2.0], at least one pair of
  // types must disagree on which of two machines is faster.
  const PetMatrix pet = PetMatrix::specLike(2019);
  bool inversionFound = false;
  for (int t1 = 0; t1 < pet.numTaskTypes() && !inversionFound; ++t1) {
    for (int t2 = t1 + 1; t2 < pet.numTaskTypes() && !inversionFound; ++t2) {
      for (int j1 = 0; j1 < pet.numMachineTypes(); ++j1) {
        for (int j2 = j1 + 1; j2 < pet.numMachineTypes(); ++j2) {
          const bool t1Prefers1 =
              pet.expectedExec(t1, j1) < pet.expectedExec(t1, j2);
          const bool t2Prefers1 =
              pet.expectedExec(t2, j1) < pet.expectedExec(t2, j2);
          if (t1Prefers1 != t2Prefers1) {
            inversionFound = true;
            break;
          }
        }
        if (inversionFound) break;
      }
    }
  }
  EXPECT_TRUE(inversionFound);
}

TEST(PetMatrixTest, MeansAndAveragesAreConsistent) {
  const PetMatrix pet = PetMatrix::specLike(3);
  for (int t = 0; t < pet.numTaskTypes(); ++t) {
    double rowAvg = 0.0;
    for (int j = 0; j < pet.numMachineTypes(); ++j) {
      EXPECT_NEAR(pet.expectedExec(t, j), pet.pet(t, j).mean(), 1e-12);
      rowAvg += pet.expectedExec(t, j);
    }
    rowAvg /= pet.numMachineTypes();
    EXPECT_NEAR(pet.typeMeanAcrossMachines(t), rowAvg, 1e-9);
  }
  double overall = 0.0;
  for (int t = 0; t < pet.numTaskTypes(); ++t) {
    overall += pet.typeMeanAcrossMachines(t);
  }
  EXPECT_NEAR(pet.overallMean(), overall / pet.numTaskTypes(), 1e-9);
}

TEST(PetMatrixTest, FromMeansTracksRequestedMeans) {
  const std::vector<std::vector<double>> means = {{4.0, 8.0}, {10.0, 5.0}};
  const PetMatrix pet = PetMatrix::fromMeans(means, 10.0, 1, 1.0, 4000);
  EXPECT_EQ(pet.numTaskTypes(), 2);
  EXPECT_EQ(pet.numMachineTypes(), 2);
  EXPECT_NEAR(pet.expectedExec(0, 0), 4.0, 0.5);
  EXPECT_NEAR(pet.expectedExec(1, 0), 10.0, 0.5);
}

TEST(PetMatrixTest, HomogenizedMakesAllColumnsEqual) {
  const PetMatrix pet = PetMatrix::specLike(5);
  const PetMatrix homo = pet.homogenized(3);
  for (int t = 0; t < homo.numTaskTypes(); ++t) {
    for (int j = 0; j < homo.numMachineTypes(); ++j) {
      EXPECT_EQ(homo.pet(t, j), pet.pet(t, 3));
    }
  }
  EXPECT_THROW(pet.homogenized(99), std::out_of_range);
}

TEST(PetMatrixTest, RejectsMalformedInput) {
  EXPECT_THROW(PetMatrix({}), std::invalid_argument);
  using hcs::prob::DiscretePmf;
  std::vector<std::vector<DiscretePmf>> ragged;
  ragged.push_back({DiscretePmf::pointMass(1.0), DiscretePmf::pointMass(2.0)});
  ragged.push_back({DiscretePmf::pointMass(1.0)});
  EXPECT_THROW(PetMatrix(std::move(ragged)), std::invalid_argument);
}

// --- BoundExecutionModel -------------------------------------------------------

TEST(BoundModelTest, HeterogeneousBindsMachineIToTypeI) {
  auto pet = std::make_shared<const PetMatrix>(PetMatrix::specLike(6));
  const auto model = BoundExecutionModel::heterogeneous(pet);
  EXPECT_EQ(model.numMachines(), 8);
  for (int j = 0; j < model.numMachines(); ++j) {
    EXPECT_EQ(model.machineType(j), j);
    EXPECT_EQ(model.pet(2, j), pet->pet(2, j));
  }
}

TEST(BoundModelTest, HomogeneousBindsAllMachinesToOneType) {
  auto pet = std::make_shared<const PetMatrix>(PetMatrix::specLike(6));
  const auto model = BoundExecutionModel::homogeneous(pet, 5, 2);
  EXPECT_EQ(model.numMachines(), 5);
  for (int j = 0; j < model.numMachines(); ++j) {
    EXPECT_EQ(model.pet(1, j), pet->pet(1, 2));
    EXPECT_DOUBLE_EQ(model.expectedExec(1, j), pet->expectedExec(1, 2));
  }
}

TEST(BoundModelTest, RejectsBadBindings) {
  auto pet = std::make_shared<const PetMatrix>(PetMatrix::specLike(6));
  EXPECT_THROW(BoundExecutionModel(nullptr, {0}), std::invalid_argument);
  EXPECT_THROW(BoundExecutionModel(pet, {}), std::invalid_argument);
  EXPECT_THROW(BoundExecutionModel(pet, {99}), std::out_of_range);
  EXPECT_THROW(BoundExecutionModel::homogeneous(pet, 0, 0),
               std::invalid_argument);
}

// --- RateProfile ----------------------------------------------------------------

TEST(RateProfileTest, ConstantProfileIntegratesToTotal) {
  const RateProfile p = RateProfile::constant(100.0, 500.0);
  EXPECT_DOUBLE_EQ(p.rateAt(50.0), 5.0);
  EXPECT_DOUBLE_EQ(p.totalExpected(), 500.0);
  EXPECT_DOUBLE_EQ(p.cumulative(40.0), 200.0);
}

TEST(RateProfileTest, SpikyProfileHasPaperStructure) {
  const RateProfile p = RateProfile::spiky(1200.0, 600.0, 4, 3.0);
  // Period 300: lull 225 at rate r, spike 75 at 3r.
  const double lullRate = p.rateAt(10.0);
  const double spikeRate = p.rateAt(250.0);
  EXPECT_NEAR(spikeRate, 3.0 * lullRate, 1e-9);
  EXPECT_NEAR(p.totalExpected(), 600.0, 1e-6);
  // Spike duration is 1/3 of the lull: 75 = 225 / 3.
  EXPECT_DOUBLE_EQ(p.rateAt(224.0), lullRate);
  EXPECT_DOUBLE_EQ(p.rateAt(226.0), spikeRate);
  EXPECT_DOUBLE_EQ(p.rateAt(299.0), spikeRate);
  EXPECT_DOUBLE_EQ(p.rateAt(301.0), lullRate);
}

TEST(RateProfileTest, InvertCumulativeRoundTrips) {
  const RateProfile p = RateProfile::spiky(900.0, 450.0, 3);
  for (double t = 0.5; t < 900.0; t += 37.0) {
    const double c = p.cumulative(t);
    EXPECT_NEAR(p.invertCumulative(c), t, 1e-6);
  }
  EXPECT_DOUBLE_EQ(p.invertCumulative(0.0), 0.0);
  EXPECT_DOUBLE_EQ(p.invertCumulative(1e9), 900.0);
}

TEST(RateProfileTest, RejectsMalformedSegments) {
  using Segment = RateProfile::Segment;
  EXPECT_THROW(RateProfile({}), std::invalid_argument);
  EXPECT_THROW(RateProfile({Segment{0.0, 0.0, 1.0}}), std::invalid_argument);
  EXPECT_THROW(RateProfile({Segment{0.0, 1.0, -1.0}}), std::invalid_argument);
  // Gap between segments.
  EXPECT_THROW(RateProfile({Segment{0.0, 1.0, 1.0}, Segment{2.0, 3.0, 1.0}}),
               std::invalid_argument);
}

// --- Arrival generation ----------------------------------------------------------

TEST(ArrivalTest, GeneratesRoughlyRequestedCount) {
  ArrivalSpec spec;
  spec.pattern = ArrivalPattern::Constant;
  spec.span = 1000.0;
  spec.totalTasks = 2400;
  spec.numTaskTypes = 12;
  Rng rng(1);
  const auto arrivals = hcs::workload::generateArrivals(spec, rng);
  EXPECT_NEAR(static_cast<double>(arrivals.size()), 2400.0, 120.0);
}

TEST(ArrivalTest, ArrivalsAreSortedAndInSpan) {
  ArrivalSpec spec;
  spec.span = 500.0;
  spec.totalTasks = 1000;
  Rng rng(2);
  const auto arrivals = hcs::workload::generateArrivals(spec, rng);
  for (std::size_t i = 1; i < arrivals.size(); ++i) {
    EXPECT_LE(arrivals[i - 1].time, arrivals[i].time);
  }
  for (const Arrival& a : arrivals) {
    EXPECT_GE(a.time, 0.0);
    EXPECT_LE(a.time, 500.0);
    EXPECT_GE(a.type, 0);
    EXPECT_LT(a.type, 12);
  }
}

TEST(ArrivalTest, EveryTypeGetsAFairShare) {
  ArrivalSpec spec;
  spec.span = 1000.0;
  spec.totalTasks = 3600;
  spec.numTaskTypes = 12;
  Rng rng(3);
  const auto arrivals = hcs::workload::generateArrivals(spec, rng);
  std::vector<int> counts(12, 0);
  for (const Arrival& a : arrivals) ++counts[static_cast<std::size_t>(a.type)];
  for (int c : counts) {
    EXPECT_NEAR(static_cast<double>(c), 300.0, 60.0);
  }
}

TEST(ArrivalTest, SpikyPatternConcentratesArrivalsInSpikes) {
  ArrivalSpec spec;
  spec.pattern = ArrivalPattern::Spiky;
  spec.span = 1200.0;
  spec.totalTasks = 6000;
  spec.numSpikes = 4;
  Rng rng(4);
  const auto arrivals = hcs::workload::generateArrivals(spec, rng);
  // Period 300, lull [0,225) at rate r, spike [225,300) at 3r.  Count
  // arrivals in spike windows: expected fraction = 3r*75 / (r*225 + 3r*75)
  // = 0.5.  Without spikes the windows hold only 25% of arrivals.
  std::size_t inSpike = 0;
  for (const Arrival& a : arrivals) {
    const double phase = std::fmod(a.time, 300.0);
    if (phase >= 225.0) ++inSpike;
  }
  const double fraction =
      static_cast<double>(inSpike) / static_cast<double>(arrivals.size());
  EXPECT_NEAR(fraction, 0.5, 0.05);
}

TEST(ArrivalTest, ConstantGapsHavePaperVarianceDiscipline) {
  // §V-B: gap variance is 10% of the mean.  With unit-mean gaps in
  // expected-arrival space, the per-type gap CV^2 should be ~0.1.
  ArrivalSpec spec;
  spec.pattern = ArrivalPattern::Constant;
  spec.span = 10000.0;
  spec.totalTasks = 5000;
  spec.numTaskTypes = 1;
  Rng rng(5);
  const auto arrivals = hcs::workload::generateArrivals(spec, rng);
  ASSERT_GT(arrivals.size(), 1000u);
  hcs::stats::RunningStats gaps;
  for (std::size_t i = 1; i < arrivals.size(); ++i) {
    gaps.add(arrivals[i].time - arrivals[i - 1].time);
  }
  const double cv2 = gaps.variance() / (gaps.mean() * gaps.mean());
  EXPECT_NEAR(cv2, 0.1, 0.03);
}

// --- Deadlines (Eq. 4) ------------------------------------------------------------

TEST(DeadlineTest, RespectsEq4Bounds) {
  const PetMatrix pet = PetMatrix::specLike(9);
  DeadlineSpec spec;  // beta in [0.8, 2.5]
  Rng rng(6);
  for (int t = 0; t < pet.numTaskTypes(); ++t) {
    for (int rep = 0; rep < 50; ++rep) {
      const double arrival = 100.0;
      const double deadline =
          hcs::workload::assignDeadline(pet, t, arrival, spec, rng);
      const double slackLo =
          pet.typeMeanAcrossMachines(t) + 0.8 * pet.overallMean();
      const double slackHi =
          pet.typeMeanAcrossMachines(t) + 2.5 * pet.overallMean();
      EXPECT_GE(deadline, arrival + slackLo - 1e-9);
      EXPECT_LE(deadline, arrival + slackHi + 1e-9);
    }
  }
}

TEST(DeadlineTest, RejectsMalformedBetaRange) {
  const PetMatrix pet = PetMatrix::specLike(9);
  Rng rng(1);
  DeadlineSpec bad;
  bad.betaLo = 2.0;
  bad.betaHi = 1.0;
  EXPECT_THROW(hcs::workload::assignDeadline(pet, 0, 0.0, bad, rng),
               std::invalid_argument);
}

// --- Workload ---------------------------------------------------------------------

TEST(WorkloadTest, GenerateIsDeterministicPerSeed) {
  const PetMatrix pet = PetMatrix::specLike(10);
  ArrivalSpec arrival;
  arrival.span = 300.0;
  arrival.totalTasks = 600;
  const Workload a = Workload::generate(pet, arrival, {}, 77);
  const Workload b = Workload::generate(pet, arrival, {}, 77);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a.tasks()[i].type, b.tasks()[i].type);
    EXPECT_DOUBLE_EQ(a.tasks()[i].arrival, b.tasks()[i].arrival);
    EXPECT_DOUBLE_EQ(a.tasks()[i].deadline, b.tasks()[i].deadline);
  }
  const Workload c = Workload::generate(pet, arrival, {}, 78);
  EXPECT_NE(a.tasks()[0].arrival, c.tasks()[0].arrival);
}

TEST(WorkloadTest, CountedMaskTrimsBothEnds) {
  std::vector<hcs::workload::TaskSpec> tasks;
  for (int i = 0; i < 50; ++i) {
    tasks.push_back({0, static_cast<double>(i), static_cast<double>(i + 10)});
  }
  const Workload wl(std::move(tasks), 1);
  const auto mask = wl.countedMask(5);
  EXPECT_FALSE(mask[0]);
  EXPECT_FALSE(mask[4]);
  EXPECT_TRUE(mask[5]);
  EXPECT_TRUE(mask[44]);
  EXPECT_FALSE(mask[45]);
  EXPECT_FALSE(mask[49]);
}

TEST(WorkloadTest, CountedMaskDegeneratesToAllFalse) {
  std::vector<hcs::workload::TaskSpec> tasks;
  for (int i = 0; i < 10; ++i) {
    tasks.push_back({0, static_cast<double>(i), static_cast<double>(i + 1)});
  }
  const Workload wl(std::move(tasks), 1);
  const auto mask = wl.countedMask(5);
  for (bool b : mask) EXPECT_FALSE(b);
}

TEST(WorkloadTest, RejectsMalformedTaskLists) {
  using hcs::workload::TaskSpec;
  EXPECT_THROW(Workload({TaskSpec{0, 5.0, 4.0}}, 1), std::invalid_argument);
  EXPECT_THROW(Workload({TaskSpec{3, 0.0, 1.0}}, 1), std::invalid_argument);
  EXPECT_THROW(
      Workload({TaskSpec{0, 5.0, 9.0}, TaskSpec{0, 1.0, 2.0}}, 1),
      std::invalid_argument);
}

// --- Trace IO ----------------------------------------------------------------------

TEST(TraceIoTest, SaveLoadRoundTripsExactly) {
  const PetMatrix pet = PetMatrix::specLike(11);
  ArrivalSpec arrival;
  arrival.span = 200.0;
  arrival.totalTasks = 300;
  const Workload original = Workload::generate(pet, arrival, {}, 5);
  std::stringstream buffer;
  hcs::workload::saveWorkload(original, buffer);
  const Workload loaded = hcs::workload::loadWorkload(buffer);
  ASSERT_EQ(loaded.size(), original.size());
  EXPECT_EQ(loaded.numTaskTypes(), original.numTaskTypes());
  for (std::size_t i = 0; i < original.size(); ++i) {
    EXPECT_EQ(loaded.tasks()[i].type, original.tasks()[i].type);
    EXPECT_DOUBLE_EQ(loaded.tasks()[i].arrival, original.tasks()[i].arrival);
    EXPECT_DOUBLE_EQ(loaded.tasks()[i].deadline, original.tasks()[i].deadline);
  }
}

TEST(TraceIoTest, LoadRejectsGarbage) {
  std::stringstream empty;
  EXPECT_THROW(hcs::workload::loadWorkload(empty), std::runtime_error);
  std::stringstream badHeader("not-a-workload v9 3\n");
  EXPECT_THROW(hcs::workload::loadWorkload(badHeader), std::runtime_error);
  std::stringstream badRow("hcs-workload v1 2\n0 1.0 oops\n");
  EXPECT_THROW(hcs::workload::loadWorkload(badRow), std::runtime_error);
}

TEST(TraceIoTest, ValuesRoundTripInV2) {
  std::vector<hcs::workload::TaskSpec> tasks = {
      {0, 1.0, 10.0, 1.0}, {1, 2.0, 20.0, 4.0}};
  const Workload original(std::move(tasks), 2);
  std::stringstream buffer;
  hcs::workload::saveWorkload(original, buffer);
  EXPECT_NE(buffer.str().find("hcs-workload v2"), std::string::npos);
  const Workload loaded = hcs::workload::loadWorkload(buffer);
  EXPECT_DOUBLE_EQ(loaded.tasks()[0].value, 1.0);
  EXPECT_DOUBLE_EQ(loaded.tasks()[1].value, 4.0);
}

TEST(TraceIoTest, ReadsLegacyV1TracesWithUnitValues) {
  std::stringstream in(
      "hcs-workload v1 2\n"
      "0 1.5 20.5\n"
      "1 2.5 30.0\n");
  const Workload wl = hcs::workload::loadWorkload(in);
  ASSERT_EQ(wl.size(), 2u);
  EXPECT_DOUBLE_EQ(wl.tasks()[0].value, 1.0);
  EXPECT_DOUBLE_EQ(wl.tasks()[1].value, 1.0);
}

TEST(TraceIoTest, V2RowMissingValueIsRejected) {
  std::stringstream in(
      "hcs-workload v2 1\n"
      "0 1.5 20.5\n");
  EXPECT_THROW(hcs::workload::loadWorkload(in), std::runtime_error);
}

TEST(TraceIoTest, V1RoundTripsThroughSaveAsV2) {
  // A legacy v1 trace loads (values default to 1.0) and re-saves as v2,
  // which then round-trips exactly.
  std::stringstream in(
      "hcs-workload v1 3\n"
      "0 1.5 20.5\n"
      "2 2.5 30\n"
      "1 4 8.25\n");
  const Workload v1 = hcs::workload::loadWorkload(in);
  std::stringstream buffer;
  hcs::workload::saveWorkload(v1, buffer);
  EXPECT_NE(buffer.str().find("hcs-workload v2 3"), std::string::npos);
  const Workload again = hcs::workload::loadWorkload(buffer);
  ASSERT_EQ(again.size(), v1.size());
  for (std::size_t i = 0; i < v1.size(); ++i) {
    EXPECT_EQ(again.tasks()[i].type, v1.tasks()[i].type);
    EXPECT_DOUBLE_EQ(again.tasks()[i].arrival, v1.tasks()[i].arrival);
    EXPECT_DOUBLE_EQ(again.tasks()[i].deadline, v1.tasks()[i].deadline);
    EXPECT_DOUBLE_EQ(again.tasks()[i].value, 1.0);
  }
}

TEST(TraceIoTest, CommentsAndBlankLinesAreSkippedInBothVersions) {
  for (const char* header : {"hcs-workload v1 2", "hcs-workload v2 2"}) {
    const bool v2 = std::string(header).find("v2") != std::string::npos;
    std::stringstream in(std::string(header) +
                         "\n"
                         "# a comment\n"
                         "\n" +
                         (v2 ? "0 1.0 10.0 1.0\n" : "0 1.0 10.0\n") +
                         "# trailing comment\n");
    const Workload wl = hcs::workload::loadWorkload(in);
    EXPECT_EQ(wl.size(), 1u) << header;
  }
}

/// Expects loadWorkload to throw mentioning the (1-based) offending line.
void expectRejectedAtLine(const std::string& text, const char* lineRef) {
  std::stringstream in(text);
  try {
    (void)hcs::workload::loadWorkload(in);
    FAIL() << "accepted malformed trace:\n" << text;
  } catch (const std::runtime_error& e) {
    EXPECT_NE(std::string(e.what()).find(lineRef), std::string::npos)
        << e.what();
  }
}

TEST(TraceIoTest, MalformedLinesAreRejectedWithLineNumbers) {
  // v1: non-numeric fields, wherever they appear.
  expectRejectedAtLine("hcs-workload v1 2\n0 1.0 10.0\nx 2.0 20.0\n",
                       "line 3");
  expectRejectedAtLine("hcs-workload v1 2\n0 oops 10.0\n", "line 2");
  // v1: too few columns.
  expectRejectedAtLine("hcs-workload v1 2\n0 1.0\n", "line 2");
  // v2: value column malformed.
  expectRejectedAtLine("hcs-workload v2 2\n0 1.0 10.0 cheap\n", "line 2");
  // v2: truncated mid-row after a valid row.
  expectRejectedAtLine("hcs-workload v2 1\n0 1.0 10.0 1.0\n0 2.0\n",
                       "line 3");
}

TEST(TraceIoTest, HeaderVariantsAreRejected) {
  for (const char* header : {
           "hcs-workload v3 2",   // unknown version
           "hcs-workload v1 0",   // no task types
           "hcs-workload v1 -2",  // negative task types
           "hcs-workload v1",     // missing count
           "hcs-workload",        // missing version
           "v1 2",                // missing magic
       }) {
    std::stringstream in(std::string(header) + "\n0 1.0 10.0\n");
    EXPECT_THROW(hcs::workload::loadWorkload(in), std::runtime_error)
        << header;
  }
}

TEST(TraceIoTest, LoadedRowsStillPassWorkloadValidation) {
  // trace_io delegates semantic validation to the Workload constructor:
  // out-of-range task types and unsorted arrivals must still throw.
  std::stringstream badType("hcs-workload v1 2\n5 1.0 10.0\n");
  EXPECT_THROW(hcs::workload::loadWorkload(badType), std::invalid_argument);
  std::stringstream unsorted(
      "hcs-workload v1 1\n0 5.0 10.0\n0 1.0 10.0\n");
  EXPECT_THROW(hcs::workload::loadWorkload(unsorted), std::invalid_argument);
}

TEST(TraceIoTest, FileOpenErrorsAreReported) {
  EXPECT_THROW(
      hcs::workload::loadWorkloadFile("/nonexistent/dir/trace.txt"),
      std::runtime_error);
  const Workload wl({hcs::workload::TaskSpec{0, 1.0, 2.0}}, 1);
  EXPECT_THROW(
      hcs::workload::saveWorkloadFile(wl, "/nonexistent/dir/trace.txt"),
      std::runtime_error);
}

TEST(WorkloadTest, RejectsNonPositiveValues) {
  using hcs::workload::TaskSpec;
  EXPECT_THROW(Workload({TaskSpec{0, 0.0, 5.0, 0.0}}, 1),
               std::invalid_argument);
  EXPECT_THROW(Workload({TaskSpec{0, 0.0, 5.0, -2.0}}, 1),
               std::invalid_argument);
}

TEST(TraceIoTest, CommentsAndBlankLinesAreSkipped) {
  std::stringstream in(
      "hcs-workload v1 2\n"
      "# a comment\n"
      "\n"
      "0 1.5 20.5\n"
      "1 2.5 30.0\n");
  const Workload wl = hcs::workload::loadWorkload(in);
  EXPECT_EQ(wl.size(), 2u);
  EXPECT_EQ(wl.tasks()[1].type, 1);
}

TEST(TraceIoTest, FileRoundTrip) {
  const PetMatrix pet = PetMatrix::specLike(12);
  ArrivalSpec arrival;
  arrival.span = 100.0;
  arrival.totalTasks = 120;
  const Workload original = Workload::generate(pet, arrival, {}, 6);
  const std::string path = ::testing::TempDir() + "/hcs_trace_test.txt";
  hcs::workload::saveWorkloadFile(original, path);
  const Workload loaded = hcs::workload::loadWorkloadFile(path);
  EXPECT_EQ(loaded.size(), original.size());
  EXPECT_THROW(hcs::workload::loadWorkloadFile("/nonexistent/p.txt"),
               std::runtime_error);
}

}  // namespace
