// Tests for the PCT cache: memoized append convolutions, queue-chain
// prefixes, hit/invalidate-on-epoch-bump semantics, and end-to-end
// equivalence of cached vs uncached simulation.

#include <gtest/gtest.h>

#include "core/simulation.h"
#include "exp/scenario.h"
#include "heuristics/pct_cache.h"
#include "prob/pmf.h"
#include "sim/machine.h"
#include "sim/task.h"
#include "test_util.h"

namespace {

using hcs::heuristics::PctCache;
using hcs::prob::DiscretePmf;
using hcs::sim::Machine;
using hcs::sim::TaskPool;
using hcs::testutil::FakeModel;

FakeModel twoTypeModel() {
  // Two task types, one machine; PMFs with some spread so convolutions are
  // non-trivial.
  return FakeModel({
      {DiscretePmf(2, {0.5, 0.5})},
      {DiscretePmf(3, {0.25, 0.5, 0.25})},
  });
}

// --- Machine queue epoch -----------------------------------------------------

TEST(QueueEpochTest, BumpsOnEveryMutation) {
  FakeModel model = twoTypeModel();
  TaskPool pool;
  Machine m(0, 1.0);
  const auto e0 = m.queueEpoch();

  const auto a = pool.create(0, 0.0, 50.0);
  const auto b = pool.create(1, 0.0, 50.0);
  const auto c = pool.create(0, 0.0, 50.0);
  m.dispatch(a, 0.0, pool, model);
  const auto e1 = m.queueEpoch();
  EXPECT_GT(e1, e0);

  m.dispatch(b, 1.0, pool, model);
  m.dispatch(c, 1.0, pool, model);
  const auto e2 = m.queueEpoch();
  EXPECT_GT(e2, e1);

  m.removeQueued(c, 2.0, pool, model);
  const auto e3 = m.queueEpoch();
  EXPECT_GT(e3, e2);

  m.finishRunning(3.0, pool, model);
  const auto e4 = m.queueEpoch();
  EXPECT_GT(e4, e3);

  m.startNextIfIdle(3.0, pool, model);
  const auto e5 = m.queueEpoch();
  EXPECT_GT(e5, e4);

  m.abortRunning(4.0, pool, model);
  EXPECT_GT(m.queueEpoch(), e5);
}

// --- appendPct ---------------------------------------------------------------

TEST(PctCacheTest, AppendPctMatchesUncachedComputation) {
  FakeModel model = twoTypeModel();
  TaskPool pool;
  Machine m(0, 1.0);
  PctCache cache;

  const auto a = pool.create(0, 0.0, 50.0);
  const auto b = pool.create(1, 0.0, 50.0);
  m.dispatch(a, 0.0, pool, model);
  m.dispatch(b, 0.0, pool, model);

  for (hcs::sim::TaskType type : {0, 1}) {
    const DiscretePmf expected =
        m.tailPct(5.0, pool, model).convolve(model.pet(type, 0));
    EXPECT_EQ(cache.appendPct(m, 5.0, pool, model, type), expected);
    EXPECT_DOUBLE_EQ(cache.appendChance(m, 5.0, pool, model, type, 9.0),
                     expected.successProbability(9.0));
  }
}

TEST(PctCacheTest, SecondLookupIsAHit) {
  FakeModel model = twoTypeModel();
  TaskPool pool;
  Machine m(0, 1.0);
  PctCache cache;

  m.dispatch(pool.create(0, 0.0, 50.0), 0.0, pool, model);

  cache.appendPct(m, 1.0, pool, model, 0);
  EXPECT_EQ(cache.stats().appendMisses, 1u);
  EXPECT_EQ(cache.stats().appendHits, 0u);

  cache.appendPct(m, 1.0, pool, model, 0);
  EXPECT_EQ(cache.stats().appendMisses, 1u);
  EXPECT_EQ(cache.stats().appendHits, 1u);

  // A different type misses (separate convolution), then hits.
  cache.appendPct(m, 1.0, pool, model, 1);
  cache.appendPct(m, 1.0, pool, model, 1);
  EXPECT_EQ(cache.stats().appendMisses, 2u);
  EXPECT_EQ(cache.stats().appendHits, 2u);
}

TEST(PctCacheTest, EpochBumpInvalidates) {
  FakeModel model = twoTypeModel();
  TaskPool pool;
  Machine m(0, 1.0);
  PctCache cache;

  m.dispatch(pool.create(0, 0.0, 50.0), 0.0, pool, model);
  cache.appendPct(m, 1.0, pool, model, 0);
  cache.appendPct(m, 1.0, pool, model, 0);
  EXPECT_EQ(cache.stats().appendHits, 1u);

  // Mutating the machine bumps the epoch; the next lookup must recompute
  // against the new queue state.
  m.dispatch(pool.create(1, 0.0, 50.0), 1.0, pool, model);
  const DiscretePmf expected =
      m.tailPct(1.0, pool, model).convolve(model.pet(0, 0));
  EXPECT_EQ(cache.appendPct(m, 1.0, pool, model, 0), expected);
  EXPECT_EQ(cache.stats().appendMisses, 2u);
  EXPECT_EQ(cache.stats().appendHits, 1u);
}

TEST(PctCacheTest, UntrackedMachineUsesElapsedBinKey) {
  FakeModel model = twoTypeModel();
  TaskPool pool;
  // trackTail off — the immediate-mode configuration.
  Machine m(0, 1.0, /*trackTail=*/false);
  PctCache cache;

  const auto a = pool.create(0, 0.0, 50.0);
  const auto b = pool.create(1, 0.0, 50.0);
  m.dispatch(a, 0.0, pool, model);
  m.dispatch(b, 0.0, pool, model);

  const DiscretePmf atOne =
      m.tailPct(1.0, pool, model).convolve(model.pet(0, 0));
  EXPECT_EQ(cache.appendPct(m, 1.0, pool, model, 0), atOne);

  // Same elapsed bin, same epoch: hit even though `now` moved within the
  // bin... (bin width 1.0, so 1.4 stays in elapsed bin 1).
  cache.appendPct(m, 1.4, pool, model, 0);
  EXPECT_EQ(cache.stats().appendHits, 1u);

  // Crossing into the next elapsed bin re-conditions the chain.
  const DiscretePmf atTwo =
      m.tailPct(2.0, pool, model).convolve(model.pet(0, 0));
  EXPECT_EQ(cache.appendPct(m, 2.0, pool, model, 0), atTwo);
  EXPECT_EQ(cache.stats().appendMisses, 2u);
}

// --- queuePcts ---------------------------------------------------------------

TEST(PctCacheTest, QueuePctsMatchManualChain) {
  FakeModel model = twoTypeModel();
  TaskPool pool;
  Machine m(0, 1.0);
  PctCache cache;

  m.dispatch(pool.create(0, 0.0, 50.0), 0.0, pool, model);  // runs
  m.dispatch(pool.create(1, 0.0, 50.0), 0.0, pool, model);  // queued
  m.dispatch(pool.create(0, 0.0, 50.0), 0.0, pool, model);  // queued

  const auto pcts = cache.queuePcts(m, 2.0, pool, model);
  ASSERT_EQ(pcts.size(), 2u);

  DiscretePmf acc = m.availabilityPct(2.0, pool, model);
  acc = acc.convolve(model.pet(1, 0));
  EXPECT_EQ(pcts[0], acc);
  acc = acc.convolve(model.pet(0, 0));
  EXPECT_EQ(pcts[1], acc);

  // Same epoch + elapsed bin: chain hit.
  cache.queuePcts(m, 2.0, pool, model);
  EXPECT_EQ(cache.stats().chainHits, 1u);
  EXPECT_EQ(cache.stats().chainMisses, 1u);

  // Queue mutation invalidates.
  m.removeQueued(2, 2.0, pool, model);  // drops the type-0 task at the back
  const auto after = cache.queuePcts(m, 2.0, pool, model);
  ASSERT_EQ(after.size(), 1u);
  EXPECT_EQ(after[0],
            m.availabilityPct(2.0, pool, model).convolve(model.pet(1, 0)));
  EXPECT_EQ(cache.stats().chainMisses, 2u);
}

// --- scalar memo helpers -----------------------------------------------------

TEST(PctCacheTest, RemainingMeanMatchesPmfMean) {
  FakeModel model = twoTypeModel();
  TaskPool pool;
  Machine m(0, 1.0);
  PctCache cache;

  m.dispatch(pool.create(1, 0.0, 50.0), 0.0, pool, model);
  const double expected =
      model.pet(1, 0).conditionalRemaining(1.7).mean();
  EXPECT_EQ(cache.remainingMean(m, 1.7, pool, model), expected);
  cache.remainingMean(m, 1.7, pool, model);
  EXPECT_EQ(cache.stats().meanHits, 1u);
}

TEST(DiscretePmfFastPathTest, ScalarShortcutsMatchMaterializedPmfs) {
  const DiscretePmf pet(3, {0.1, 0.0, 0.4, 0.3, 0.2}, 0.5);
  for (double elapsed : {0.0, 0.4, 1.1, 1.6, 2.9, 5.0}) {
    const DiscretePmf remaining = pet.conditionalRemaining(elapsed);
    EXPECT_EQ(remaining.mean(), pet.conditionalRemainingMean(elapsed))
        << "elapsed=" << elapsed;
    const auto [lo, hi] = pet.conditionalRemainingBounds(elapsed);
    EXPECT_EQ(lo, remaining.firstBin()) << "elapsed=" << elapsed;
    EXPECT_EQ(hi, remaining.lastBin()) << "elapsed=" << elapsed;
  }
  // cdfShiftedBy == shifted().cdf().
  for (double t : {0.0, 1.5, 2.0, 3.7}) {
    EXPECT_EQ(pet.cdfShiftedBy(4, t), pet.shifted(4).cdf(t));
  }
}

// --- end-to-end equivalence --------------------------------------------------

TEST(PctCacheTest, CachedSimulationMatchesUncachedExactly) {
  hcs::exp::PaperScenario::Options options;
  options.scale = 0.02;
  options.trials = 2;
  const hcs::exp::PaperScenario scenario(options);

  for (const char* heuristic : {"MM", "MMU", "MCT"}) {
    hcs::exp::ExperimentSpec spec = scenario.experimentSpec(
        hcs::exp::PaperScenario::kRate20k,
        hcs::workload::ArrivalPattern::Spiky);
    spec.sim.heuristic = heuristic;

    spec.sim.pctCacheEnabled = true;
    const auto cached = hcs::exp::runExperiment(scenario.hetero(), spec);
    spec.sim.pctCacheEnabled = false;
    const auto uncached = hcs::exp::runExperiment(scenario.hetero(), spec);

    ASSERT_EQ(cached.perTrialRobustness.size(),
              uncached.perTrialRobustness.size());
    for (std::size_t i = 0; i < cached.perTrialRobustness.size(); ++i) {
      EXPECT_EQ(cached.perTrialRobustness[i], uncached.perTrialRobustness[i])
          << heuristic << " trial " << i;
    }
    EXPECT_EQ(cached.robustnessCi.mean, uncached.robustnessCi.mean)
        << heuristic;
  }
}

}  // namespace
