// The federation tier's contracts:
//  - ORACLE: a federation of ONE cluster with ZERO dispatch latency is
//    byte-identical — trace-for-trace, metric-for-metric — to the plain
//    single-cluster engine, across heuristic × pruning configurations.
//  - Routing policies distribute the stream deterministically (ties toward
//    cluster 0), dispatch latency shifts cluster-side arrivals, per-cluster
//    RNG streams split reproducibly, and per-cluster metrics sum to the
//    aggregate.
//  - The scenario schema's `federation` block round-trips and rejects
//    malformed input with line numbers.

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdlib>
#include <vector>

#include "core/simulation.h"
#include "exp/scenario.h"
#include "exp/scenario_spec.h"
#include "exp/sweep.h"
#include "fed/fed_experiment.h"
#include "fed/federation.h"
#include "sim/trace.h"
#include "workload/workload.h"

namespace {

using namespace hcs;

double testScale() {
  // Honor HCS_SCALE like the other scale-dependent suites (the sanitizer
  // CI leg shrinks it), but never above the default 0.03.
  if (const char* env = std::getenv("HCS_SCALE")) {
    const double s = std::strtod(env, nullptr);
    if (s > 0.0) return std::min(s, 0.03);
  }
  return 0.03;
}

/// Full lifecycle trace + result digest of one trial.
struct TrialDigest {
  std::vector<sim::TraceEvent> trace;
  double robustness = 0.0;
  std::size_t mappingEvents = 0;
  double makespan = 0.0;
  std::size_t onTime = 0, late = 0, reactive = 0, proactive = 0, defers = 0;
  std::vector<double> utilization;
  std::vector<double> fairness;

  bool operator==(const TrialDigest&) const = default;
};

TrialDigest digestOf(const core::TrialResult& r,
                     std::vector<sim::TraceEvent> trace) {
  TrialDigest d;
  d.trace = std::move(trace);
  d.robustness = r.robustnessPercent;
  d.mappingEvents = r.mappingEvents;
  d.makespan = r.makespan;
  d.onTime = r.metrics.completedOnTime();
  d.late = r.metrics.completedLate();
  d.reactive = r.metrics.droppedReactive();
  d.proactive = r.metrics.droppedProactive();
  d.defers = r.metrics.deferrals();
  d.utilization = r.machineUtilization;
  d.fairness = r.fairnessScores;
  return d;
}

TrialDigest runDirect(const core::SimulationConfig& base,
                      const sim::ExecutionModel& model,
                      const workload::Workload& wl) {
  core::SimulationConfig config = base;
  sim::TraceLog log;
  config.traceSink = log.sink();
  const core::TrialResult r = core::Simulation(model, wl, config).run();
  return digestOf(r, log.events());
}

fed::FederatedTrialResult runFederatedRaw(
    const core::SimulationConfig& base,
    std::vector<const sim::ExecutionModel*> models,
    const workload::Workload& wl, fed::FederationSpec spec,
    std::vector<sim::TraceEvent>* trace = nullptr,
    std::vector<std::size_t>* traceClusters = nullptr) {
  if (trace != nullptr) {
    spec.traceSink = [trace, traceClusters](std::size_t cluster,
                                            const sim::TraceEvent& e) {
      trace->push_back(e);
      if (traceClusters != nullptr) traceClusters->push_back(cluster);
    };
  }
  return fed::FederatedSimulation(std::move(models), wl, base, spec).run();
}

TrialDigest runFederated(const core::SimulationConfig& base,
                         std::vector<const sim::ExecutionModel*> models,
                         const workload::Workload& wl,
                         fed::FederationSpec spec) {
  std::vector<sim::TraceEvent> trace;
  const fed::FederatedTrialResult r =
      runFederatedRaw(base, std::move(models), wl, spec, &trace);
  return digestOf(r.total, std::move(trace));
}

workload::Workload makeWorkload(const exp::PaperScenario& scenario,
                                std::size_t rate, std::uint64_t seed) {
  return workload::Workload::generate(
      *scenario.pet(),
      scenario.arrivalSpec(rate, workload::ArrivalPattern::Spiky), {}, seed);
}

// --- The oracle: federation(N=1, latency=0) == single-cluster engine -------

class FederationOracle : public ::testing::TestWithParam<const char*> {};

TEST_P(FederationOracle, SingleClusterZeroLatencyIsTraceIdentical) {
  exp::PaperScenario::Options options;
  options.scale = testScale();
  const exp::PaperScenario scenario(options);
  const workload::Workload wl =
      makeWorkload(scenario, exp::PaperScenario::kRate25k, 7);

  for (const bool prune : {true, false}) {
    core::SimulationConfig config;
    config.heuristic = GetParam();
    config.pruning = prune ? pruning::PruningConfig{}
                           : pruning::PruningConfig::disabled();
    config.warmupMargin = 0;
    const TrialDigest direct = runDirect(config, scenario.hetero(), wl);
    const TrialDigest federated = runFederated(
        config, {&scenario.hetero()}, wl, fed::FederationSpec{});
    EXPECT_EQ(direct, federated)
        << GetParam() << " diverged through the federation (prune=" << prune
        << ")";
  }
}

// Batch two-phase, immediate, and chance-aware heuristics: well beyond the
// required 5 heuristic × pruning configurations.
INSTANTIATE_TEST_SUITE_P(HeuristicsTimesPruning, FederationOracle,
                         ::testing::Values("MM", "MSD", "MMU", "MaxMin",
                                           "Sufferage", "MCT", "KPB",
                                           "MaxChance"));

TEST(FederationOracleTest, AbortAndNoCacheConfigurationsMatch) {
  exp::PaperScenario::Options options;
  options.scale = testScale();
  const exp::PaperScenario scenario(options);
  const workload::Workload wl =
      makeWorkload(scenario, exp::PaperScenario::kRate25k, 13);

  for (const bool cache : {true, false}) {
    core::SimulationConfig config;
    config.heuristic = "MMU";
    config.abortRunningAtDeadline = true;
    config.pctCacheEnabled = cache;
    config.warmupMargin = 0;
    const TrialDigest direct = runDirect(config, scenario.hetero(), wl);
    const TrialDigest federated = runFederated(
        config, {&scenario.hetero()}, wl, fed::FederationSpec{});
    EXPECT_EQ(direct, federated) << "cache=" << cache;
  }
}

TEST(FederationOracleTest, ExperimentAggregatesMatchRunExperiment) {
  exp::PaperScenario::Options options;
  options.scale = testScale();
  const exp::PaperScenario scenario(options);
  exp::ExperimentSpec spec =
      scenario.experimentSpec(exp::PaperScenario::kRate20k,
                              workload::ArrivalPattern::Spiky);
  spec.trials = 3;
  spec.sim.heuristic = "MM";
  const exp::ExperimentResult direct =
      exp::runExperiment(scenario.hetero(), spec);
  const exp::ExperimentResult federated = fed::runFederatedExperiment(
      {&scenario.hetero()}, spec, fed::FederationSpec{});
  EXPECT_EQ(direct.perTrialRobustness, federated.perTrialRobustness);
  EXPECT_EQ(direct.robustnessCi.mean, federated.robustnessCi.mean);
  EXPECT_EQ(direct.robustnessCi.halfWidth, federated.robustnessCi.halfWidth);
}

// --- Multi-cluster behavior -------------------------------------------------

TEST(FederationTest, RoundRobinDistributesCyclically) {
  exp::PaperScenario::Options options;
  options.scale = testScale();
  const exp::PaperScenario scenario(options);
  const workload::Workload wl =
      makeWorkload(scenario, exp::PaperScenario::kRate15k, 3);

  core::SimulationConfig config;
  config.heuristic = "MM";
  config.warmupMargin = 0;
  fed::FederationSpec spec;
  spec.clusters = 3;
  spec.routing = fed::RoutingPolicyKind::RoundRobin;
  const auto& model = scenario.hetero();
  const fed::FederatedTrialResult r =
      runFederatedRaw(config, {&model, &model, &model}, wl, spec);
  ASSERT_EQ(r.clusters.size(), 3u);
  std::size_t routed = 0;
  for (const fed::ClusterOutcome& c : r.clusters) routed += c.tasksRouted;
  EXPECT_EQ(routed, wl.size());
  // Cyclic assignment: per-cluster counts differ by at most one.
  const auto [lo, hi] = std::minmax(
      {r.clusters[0].tasksRouted, r.clusters[1].tasksRouted,
       r.clusters[2].tasksRouted});
  EXPECT_LE(hi - lo, 1u);
  // Every task terminates exactly once, somewhere in the federation.
  EXPECT_EQ(r.total.metrics.totals().total(), wl.size());
}

TEST(FederationTest, StatefulPoliciesUseEveryClusterAndImproveOnOverload) {
  exp::PaperScenario::Options options;
  options.scale = testScale();
  const exp::PaperScenario scenario(options);
  // 25k-equivalent on ONE cluster is oversubscribed; across 2 clusters the
  // stateful policies must spread it.
  const workload::Workload wl =
      makeWorkload(scenario, exp::PaperScenario::kRate25k, 5);

  core::SimulationConfig config;
  config.heuristic = "MM";
  config.warmupMargin = 0;
  const auto& model = scenario.hetero();
  for (const fed::RoutingPolicyKind kind :
       {fed::RoutingPolicyKind::LeastQueueDepth,
        fed::RoutingPolicyKind::LeastExpectedCompletion,
        fed::RoutingPolicyKind::MaxChance}) {
    fed::FederationSpec spec;
    spec.clusters = 2;
    spec.routing = kind;
    const fed::FederatedTrialResult r =
        runFederatedRaw(config, {&model, &model}, wl, spec);
    EXPECT_GT(r.clusters[0].tasksRouted, 0u) << toString(kind);
    EXPECT_GT(r.clusters[1].tasksRouted, 0u) << toString(kind);
    EXPECT_EQ(r.total.metrics.totals().total(), wl.size()) << toString(kind);

    // Doubling the capacity behind the gateway must not hurt robustness
    // relative to forcing everything through one cluster.
    fed::FederationSpec one;
    const fed::FederatedTrialResult single =
        runFederatedRaw(config, {&model}, wl, one);
    EXPECT_GE(r.total.robustnessPercent, single.total.robustnessPercent)
        << toString(kind);
  }
}

TEST(FederationTest, DispatchLatencyShiftsClusterSideArrivals) {
  exp::PaperScenario::Options options;
  options.scale = testScale();
  const exp::PaperScenario scenario(options);
  const workload::Workload wl =
      makeWorkload(scenario, exp::PaperScenario::kRate15k, 9);

  core::SimulationConfig config;
  config.heuristic = "MM";
  config.warmupMargin = 0;
  fed::FederationSpec spec;
  spec.dispatchLatency = 2.5;
  std::vector<sim::TraceEvent> trace;
  (void)runFederatedRaw(config, {&scenario.hetero()}, wl, spec, &trace);

  std::size_t arrivals = 0;
  for (const sim::TraceEvent& e : trace) {
    if (e.kind != sim::TraceEventKind::Arrival) continue;
    ++arrivals;
    const sim::Task expected{};  // silence unused warnings on some gccs
    (void)expected;
    EXPECT_DOUBLE_EQ(
        e.time, wl.tasks()[static_cast<std::size_t>(e.task)].arrival + 2.5);
  }
  EXPECT_EQ(arrivals, wl.size());
}

TEST(FederationTest, PerClusterMetricsSumToAggregate) {
  exp::PaperScenario::Options options;
  options.scale = testScale();
  const exp::PaperScenario scenario(options);
  const workload::Workload wl =
      makeWorkload(scenario, exp::PaperScenario::kRate25k, 21);

  core::SimulationConfig config;
  config.heuristic = "MSD";
  config.warmupMargin = 0;
  fed::FederationSpec spec;
  spec.clusters = 4;
  spec.routing = fed::RoutingPolicyKind::LeastQueueDepth;
  const auto& model = scenario.hetero();
  const fed::FederatedTrialResult r =
      runFederatedRaw(config, {&model, &model, &model, &model}, wl, spec);

  std::size_t onTime = 0, counted = 0, defers = 0, events = 0;
  for (const fed::ClusterOutcome& c : r.clusters) {
    onTime += c.metrics.completedOnTime();
    counted += c.metrics.countedTasks();
    defers += c.metrics.deferrals();
    events += c.mappingEvents;
  }
  EXPECT_EQ(onTime, r.total.metrics.completedOnTime());
  EXPECT_EQ(counted, r.total.metrics.countedTasks());
  EXPECT_EQ(defers, r.total.metrics.deferrals());
  EXPECT_EQ(events, r.total.mappingEvents);
  EXPECT_EQ(r.total.machineUtilization.size(),
            4u * static_cast<std::size_t>(model.numMachines()));
}

TEST(FederationTest, RunsAreDeterministic) {
  exp::PaperScenario::Options options;
  options.scale = testScale();
  const exp::PaperScenario scenario(options);
  const workload::Workload wl =
      makeWorkload(scenario, exp::PaperScenario::kRate20k, 17);

  core::SimulationConfig config;
  config.heuristic = "MM";
  config.warmupMargin = 0;
  fed::FederationSpec spec;
  spec.clusters = 3;
  spec.routing = fed::RoutingPolicyKind::MaxChance;
  const auto& model = scenario.hetero();
  const TrialDigest first =
      runFederated(config, {&model, &model, &model}, wl, spec);
  const TrialDigest second =
      runFederated(config, {&model, &model, &model}, wl, spec);
  EXPECT_EQ(first, second);
}

TEST(FederationTest, ClusterSeedsSplitFromTheBaseStream) {
  const std::uint64_t base = 0x5eed;
  EXPECT_EQ(fed::clusterExecutionSeed(base, 0), base);
  std::vector<std::uint64_t> seeds;
  for (std::size_t c = 0; c < 8; ++c) {
    seeds.push_back(fed::clusterExecutionSeed(base, c));
  }
  std::sort(seeds.begin(), seeds.end());
  EXPECT_EQ(std::adjacent_find(seeds.begin(), seeds.end()), seeds.end())
      << "cluster seeds must be pairwise distinct";
}

TEST(FederationTest, RejectsMalformedConstruction) {
  exp::PaperScenario::Options options;
  options.scale = testScale();
  const exp::PaperScenario scenario(options);
  const workload::Workload wl =
      makeWorkload(scenario, exp::PaperScenario::kRate15k, 1);
  core::SimulationConfig config;
  config.heuristic = "MM";
  const auto& model = scenario.hetero();

  fed::FederationSpec twoClusters;
  twoClusters.clusters = 2;
  EXPECT_THROW(fed::FederatedSimulation({&model}, wl, config, twoClusters),
               std::invalid_argument);
  fed::FederationSpec negative;
  negative.dispatchLatency = -1.0;
  EXPECT_THROW(fed::FederatedSimulation({&model}, wl, config, negative),
               std::invalid_argument);
  fed::FederationSpec zero;
  zero.clusters = 0;
  EXPECT_THROW(
      fed::FederatedSimulation(std::vector<const sim::ExecutionModel*>{}, wl,
                               config, zero),
      std::invalid_argument);
}

// --- Scenario schema --------------------------------------------------------

TEST(FederationScenarioTest, BlockParsesAndRoundTrips) {
  const util::JsonValue json = util::parseJson(R"({
    "federation": {
      "enabled": true,
      "clusters": 3,
      "routing": "max_chance",
      "dispatch_latency": 1.5,
      "cluster_shapes": [[0, 1, 2], [3, 4], [5, 6, 7, 0]]
    }
  })");
  const exp::ScenarioSpec spec = exp::parseScenarioSpec(json);
  EXPECT_TRUE(spec.federationEnabled);
  EXPECT_EQ(spec.fedClusters, 3u);
  EXPECT_EQ(spec.fedRouting, fed::RoutingPolicyKind::MaxChance);
  EXPECT_DOUBLE_EQ(spec.fedDispatchLatency, 1.5);
  ASSERT_EQ(spec.fedClusterShapes.size(), 3u);
  EXPECT_EQ(spec.fedClusterShapes[1], (std::vector<int>{3, 4}));

  // parse -> serialize -> parse is the identity.
  const exp::ScenarioSpec again =
      exp::parseScenarioSpec(exp::scenarioSpecToJson(spec));
  EXPECT_EQ(again.federationEnabled, spec.federationEnabled);
  EXPECT_EQ(again.fedClusters, spec.fedClusters);
  EXPECT_EQ(again.fedRouting, spec.fedRouting);
  EXPECT_EQ(again.fedDispatchLatency, spec.fedDispatchLatency);
  EXPECT_EQ(again.fedClusterShapes, spec.fedClusterShapes);
  EXPECT_EQ(exp::scenarioSpecToJson(again), exp::scenarioSpecToJson(spec));
}

TEST(FederationScenarioTest, DefaultIsDisabledAndAbsentFromLegacyFiles) {
  const exp::ScenarioSpec spec =
      exp::parseScenarioSpec(util::parseJson("{}"));
  EXPECT_FALSE(spec.federationEnabled);
  EXPECT_EQ(spec.fedClusters, 1u);
}

void expectRejected(const char* text, const char* needle) {
  try {
    (void)exp::parseScenarioSpec(util::parseJson(text));
    FAIL() << "expected rejection mentioning \"" << needle << "\"";
  } catch (const exp::ScenarioError& e) {
    EXPECT_NE(std::string(e.what()).find("line "), std::string::npos)
        << e.what();
    EXPECT_NE(std::string(e.what()).find(needle), std::string::npos)
        << e.what();
  }
}

TEST(FederationScenarioTest, RejectsMalformedBlocksWithLineNumbers) {
  expectRejected(R"({"federation": {"clusters": 0}})", "clusters");
  expectRejected(R"({"federation": {"routing": "best_effort"}})",
                 "unknown policy");
  expectRejected(R"({"federation": {"dispatch_latency": -2}})",
                 "dispatch_latency");
  expectRejected(R"({"federation": {"surprise": 1}})", "unknown key");
  expectRejected(
      R"({"federation": {"clusters": 2, "cluster_shapes": [[0]]}})",
      "cluster_shapes");
  expectRejected(R"({"federation": {"cluster_shapes": [[99]]}})",
                 "out of range");
}

TEST(FederationScenarioTest, BindBuildsOneModelPerCluster) {
  exp::ScenarioSpec spec;
  spec.scale = testScale();
  spec.federationEnabled = true;
  spec.fedClusters = 2;
  const exp::BoundScenario mirrored = exp::bindScenario(spec);
  EXPECT_TRUE(mirrored.federated);
  ASSERT_EQ(mirrored.fedModels.size(), 2u);
  EXPECT_EQ(mirrored.fedModels[0], mirrored.model);
  EXPECT_EQ(mirrored.fedModels[1], mirrored.model);

  spec.fedClusterShapes = {{0, 1, 2, 3}, {4, 5}};
  const exp::BoundScenario skewed = exp::bindScenario(spec);
  ASSERT_EQ(skewed.fedModels.size(), 2u);
  EXPECT_EQ(skewed.fedModels[0]->numMachines(), 4);
  EXPECT_EQ(skewed.fedModels[1]->numMachines(), 2);
  EXPECT_EQ(skewed.federation.clusters, 2u);
}

TEST(FederationScenarioTest, SweepRunsFederatedGridPoints) {
  // A 2-point sweep over cluster count through the real runSweep path, at a
  // tiny scale: locks the fed <-> sweep wiring without golden files.
  const std::string doc = R"({
    "workload": { "rate": 25000 },
    "run": { "trials": 1, "scale": 0.02 },
    "federation": { "enabled": true, "routing": "least_queue" },
    "sweep": [ { "field": "federation.clusters", "values": [1, 2] } ]
  })";
  const exp::ScenarioDoc parsed = exp::parseScenarioDoc(doc);
  const std::vector<exp::SweepOutcome> outcomes = exp::runSweep(parsed);
  ASSERT_EQ(outcomes.size(), 2u);
  // Two clusters absorb an oversubscribed stream at least as well as one.
  EXPECT_GE(outcomes[1].result.robustnessMean(),
            outcomes[0].result.robustnessMean());
}

}  // namespace
