// Scenario subsystem: schema parsing (round-trip, strict rejection with
// line numbers), sweep grid expansion (counts, ordering, seed pairing),
// and bench-equivalence of the bound ExperimentSpec.

#include "exp/scenario_spec.h"

#include <gtest/gtest.h>

#include <string>

#include "exp/report.h"
#include "exp/scenario.h"
#include "exp/sweep.h"
#include "util/json.h"

namespace {

using namespace hcs;
using exp::ScenarioDoc;
using exp::ScenarioError;
using exp::ScenarioSpec;
using util::JsonValue;

ScenarioSpec parseSpec(const std::string& text) {
  return exp::parseScenarioSpec(util::parseJson(text));
}

void expectErrorContains(const std::string& text, const std::string& needle) {
  try {
    (void)parseSpec(text);
    FAIL() << "expected ScenarioError for: " << text;
  } catch (const ScenarioError& e) {
    EXPECT_NE(std::string(e.what()).find(needle), std::string::npos)
        << "error was: " << e.what();
  }
}

TEST(ScenarioSpec, EmptyObjectIsPaperDefaults) {
  const ScenarioSpec spec = parseSpec("{}");
  EXPECT_EQ(spec.heuristic, "MM");
  EXPECT_EQ(spec.rate, 15000u);
  EXPECT_EQ(spec.pattern, workload::ArrivalPattern::Spiky);
  EXPECT_EQ(spec.clusterKind, ScenarioSpec::ClusterKind::Heterogeneous);
  EXPECT_EQ(spec.trials, 8u);
  EXPECT_EQ(spec.seed, 2019u);
  EXPECT_DOUBLE_EQ(spec.scale, 0.1);
  EXPECT_TRUE(spec.pruning.enabled);
  EXPECT_DOUBLE_EQ(spec.pruning.threshold, 0.5);
  EXPECT_EQ(spec.warmup, -1);
}

TEST(ScenarioSpec, ParseSerializeParseIsIdentity) {
  const char* doc = R"({
    "name": "rt",
    "pet": { "seed": 7, "synthesis": { "task_types": 5, "machine_types": 3 } },
    "cluster": { "kind": "custom", "machine_types": [0, 2, 2, 1] },
    "workload": { "rate": 25000, "pattern": "constant",
                  "deadline": { "beta": [1.0, 2.0] } },
    "sim": { "heuristic": "MSD", "queue_capacity": 7,
             "pruning": { "toggle": "always", "threshold": 0.75 } },
    "run": { "trials": 3, "seed": 11, "scale": 0.04, "warmup": 5 }
  })";
  const ScenarioSpec spec1 = parseSpec(doc);
  const JsonValue json1 = exp::scenarioSpecToJson(spec1);
  const ScenarioSpec spec2 = exp::parseScenarioSpec(json1);
  const JsonValue json2 = exp::scenarioSpecToJson(spec2);
  EXPECT_TRUE(json1 == json2);
  // Spot-check the canonical form carried everything through.
  EXPECT_EQ(spec2.name, "rt");
  EXPECT_EQ(spec2.petSeed, 7u);
  EXPECT_EQ(spec2.synthesis.numTaskTypes, 5);
  EXPECT_EQ(spec2.clusterKind, ScenarioSpec::ClusterKind::Custom);
  EXPECT_EQ(spec2.customMachineTypes, (std::vector<int>{0, 2, 2, 1}));
  EXPECT_EQ(spec2.pattern, workload::ArrivalPattern::Constant);
  EXPECT_DOUBLE_EQ(spec2.deadline.betaLo, 1.0);
  EXPECT_EQ(spec2.heuristic, "MSD");
  EXPECT_EQ(spec2.machineQueueCapacity, 7u);
  EXPECT_EQ(spec2.pruning.toggle, pruning::ToggleMode::AlwaysDropping);
  EXPECT_EQ(spec2.warmup, 5);
}

TEST(ScenarioSpec, BurstyRoundTrips) {
  const char* doc = R"({
    "workload": { "pattern": "bursty",
                  "burst": { "base_rate_factor": 1.5, "peak_rate_factor": 4,
                             "width": 2.5, "period": 50, "span": 300 } }
  })";
  const ScenarioSpec spec = parseSpec(doc);
  EXPECT_EQ(spec.pattern, workload::ArrivalPattern::Bursty);
  EXPECT_DOUBLE_EQ(spec.burstPeakFactor, 4.0);
  const ScenarioSpec again =
      exp::parseScenarioSpec(exp::scenarioSpecToJson(spec));
  EXPECT_DOUBLE_EQ(again.burstBaseFactor, 1.5);
  EXPECT_DOUBLE_EQ(again.burstWidth, 2.5);
  EXPECT_DOUBLE_EQ(again.burstSpan, 300.0);
  // Burst knobs written under a non-bursty pattern survive the canonical
  // form too (a sweep case may flip the pattern later).
  const ScenarioSpec spiky = parseSpec(
      R"({"workload": {"burst": {"width": 9}}})");
  const ScenarioSpec spikyAgain =
      exp::parseScenarioSpec(exp::scenarioSpecToJson(spiky));
  EXPECT_DOUBLE_EQ(spikyAgain.burstWidth, 9.0);
  // Thinning-regime sanity is validated at load.
  expectErrorContains(
      R"({"workload": {"pattern": "bursty",
          "burst": {"width": 10, "period": 5}}})",
      "width must not exceed period");
}

TEST(ScenarioSpec, RejectsUnknownKeysWithLineNumbers) {
  try {
    (void)parseSpec("{\n  \"workload\": {\n    \"ratee\": 5\n  }\n}");
    FAIL() << "expected ScenarioError";
  } catch (const ScenarioError& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("line 3"), std::string::npos) << what;
    EXPECT_NE(what.find("unknown key \"ratee\""), std::string::npos) << what;
  }
  expectErrorContains(R"({"bogus_top": 1})", "unknown key \"bogus_top\"");
  expectErrorContains(R"({"sim": {"pruning": {"treshold": 0.5}}})",
                      "unknown key \"treshold\"");
}

TEST(ScenarioSpec, RejectsInvalidValues) {
  expectErrorContains(R"({"workload": {"pattern": "spikey"}})",
                      "unknown pattern");
  expectErrorContains(R"({"sim": {"heuristic": "NOPE"}})",
                      "unknown heuristic");
  expectErrorContains(R"({"sim": {"pruning": {"threshold": 1.5}}})",
                      "must be in [0, 1]");
  expectErrorContains(R"({"sim": {"pruning": {"toggle": "sometimes"}}})",
                      "unknown mode");
  expectErrorContains(R"({"run": {"scale": 0}})", "must be positive");
  expectErrorContains(R"({"run": {"trials": 2.5}})", "integer");
  expectErrorContains(R"({"cluster": {"kind": "custom"}})",
                      "requires machine_types");
  expectErrorContains(
      R"({"cluster": {"machine_types": [0, 1]}})", "requires kind \"custom\"");
  expectErrorContains(R"({"workload": {"deadline": {"beta": [2, 1]}}})",
                      "hi must be >= lo");
  expectErrorContains(R"({"sweep": []})", "sweep");
  // Out-of-range numerics fail at parse (no UB casts, no silent wrap).
  expectErrorContains(R"({"run": {"seed": 18446744073709551615}})",
                      "2^53");
  expectErrorContains(R"({"pet": {"synthesis": {"task_types": 1e12}}})",
                      "out of int range");
  // Custom machine-type indices are range-checked against the PET at load.
  expectErrorContains(
      R"({"cluster": {"kind": "custom", "machine_types": [0, 99]}})",
      "out of range");
  // Type errors surface the line too.
  try {
    (void)parseSpec("{\n \"sim\": {\n  \"heuristic\": 3\n }\n}");
    FAIL() << "expected ScenarioError";
  } catch (const ScenarioError& e) {
    EXPECT_NE(std::string(e.what()).find("line 3"), std::string::npos)
        << e.what();
  }
}

TEST(ScenarioSpec, BoundExperimentMatchesPaperScenarioPath) {
  // The declarative path must bind to exactly the ExperimentSpec the
  // hand-written benches build — this is what makes scenario runs
  // byte-identical to the figures.
  const ScenarioSpec spec = parseSpec(R"({
    "workload": { "rate": 25000 },
    "sim": { "heuristic": "MSD" },
    "run": { "trials": 3, "scale": 0.04 }
  })");
  const exp::BoundScenario bound = exp::bindScenario(spec);

  exp::PaperScenario::Options options;
  options.scale = 0.04;
  options.trials = 3;
  const exp::PaperScenario paper(options);
  exp::ExperimentSpec expected = paper.experimentSpec(
      exp::PaperScenario::kRate25k, workload::ArrivalPattern::Spiky);
  expected.sim.heuristic = "MSD";

  EXPECT_DOUBLE_EQ(bound.experiment.arrival.span, expected.arrival.span);
  EXPECT_EQ(bound.experiment.arrival.totalTasks,
            expected.arrival.totalTasks);
  EXPECT_EQ(bound.experiment.arrival.numTaskTypes,
            expected.arrival.numTaskTypes);
  EXPECT_EQ(bound.experiment.sim.warmupMargin, expected.sim.warmupMargin);
  EXPECT_EQ(bound.experiment.trials, expected.trials);
  EXPECT_EQ(bound.experiment.baseSeed, expected.baseSeed);
  EXPECT_EQ(bound.experiment.sim.heuristic, expected.sim.heuristic);
  EXPECT_EQ(bound.model, &bound.paper->hetero());  // hetero cluster selected
  EXPECT_EQ(bound.model->numMachines(), paper.hetero().numMachines());
}

// --- Sweep expansion --------------------------------------------------------

ScenarioDoc parseDoc(const std::string& text) {
  return exp::parseScenarioDoc(text);
}

TEST(Sweep, ExpandsValuesRangeAndCases) {
  const ScenarioDoc doc = parseDoc(R"({
    "run": { "trials": 2, "scale": 0.02 },
    "sweep": [
      { "field": "workload.rate", "values": [15000, 20000],
        "labels": ["15k", "20k"] },
      { "field": "sim.pruning.threshold",
        "range": { "from": 0.25, "to": 0.75, "step": 0.25 } },
      { "label": "engine", "cases": [
        { "name": "inc", "set": { "sim.incremental_mapping": true } },
        { "name": "ref", "set": { "sim.incremental_mapping": false } }
      ] }
    ]
  })");
  ASSERT_EQ(doc.axes.size(), 3u);
  EXPECT_EQ(doc.axes[0].size(), 2u);
  EXPECT_EQ(doc.axes[1].size(), 3u);  // 0.25, 0.5, 0.75
  EXPECT_EQ(doc.axes[2].size(), 2u);

  const std::vector<exp::GridPoint> grid = exp::expandGrid(doc);
  ASSERT_EQ(grid.size(), 12u);
  // Row-major with the last axis fastest.
  EXPECT_EQ(grid[0].labels,
            (std::vector<std::string>{"15k", "0.25", "inc"}));
  EXPECT_EQ(grid[1].labels,
            (std::vector<std::string>{"15k", "0.25", "ref"}));
  EXPECT_EQ(grid[2].labels, (std::vector<std::string>{"15k", "0.5", "inc"}));
  EXPECT_EQ(grid[11].labels,
            (std::vector<std::string>{"20k", "0.75", "ref"}));
  // Assignments landed in the specs.
  EXPECT_EQ(grid[0].spec.rate, 15000u);
  EXPECT_DOUBLE_EQ(grid[2].spec.pruning.threshold, 0.5);
  EXPECT_TRUE(grid[0].spec.incrementalMappingEnabled);
  EXPECT_FALSE(grid[1].spec.incrementalMappingEnabled);
  EXPECT_EQ(grid[11].spec.rate, 20000u);
}

TEST(Sweep, GridPointsKeepThePairedSeed) {
  const ScenarioDoc doc = parseDoc(R"({
    "run": { "seed": 777 },
    "sweep": [
      { "field": "sim.heuristic", "values": ["MM", "MSD", "MMU"] },
      { "label": "p", "cases": [
        { "name": "off", "set": { "sim.pruning": { "enabled": false,
            "reactive_drop": false, "defer": false, "toggle": "never" } } },
        { "name": "on", "set": { "sim.pruning": {} } }
      ] }
    ]
  })");
  const std::vector<exp::GridPoint> grid = exp::expandGrid(doc);
  ASSERT_EQ(grid.size(), 6u);
  for (const exp::GridPoint& point : grid) {
    EXPECT_EQ(point.spec.seed, 777u)
        << "paired-trials methodology: every grid point must see the same "
           "workload seeds";
    EXPECT_EQ(point.spec.trials, 8u);
  }
}

TEST(Sweep, CaseObjectAssignmentReplacesTheSubtree) {
  const ScenarioDoc doc = parseDoc(R"({
    "sim": { "pruning": { "threshold": 0.9 } },
    "sweep": [
      { "label": "p", "cases": [
        { "name": "paper", "set": { "sim.pruning": {} } }
      ] }
    ]
  })");
  const std::vector<exp::GridPoint> grid = exp::expandGrid(doc);
  ASSERT_EQ(grid.size(), 1u);
  // {} replaces the whole pruning object => paper defaults, not 0.9.
  EXPECT_DOUBLE_EQ(grid[0].spec.pruning.threshold, 0.5);
}

TEST(Sweep, InvalidSweptValueFailsAtLoadWithContext) {
  try {
    (void)parseDoc(R"({
      "sweep": [
        { "field": "sim.heuristic", "values": ["MM", "NOPE"] }
      ]
    })");
    FAIL() << "expected ScenarioError";
  } catch (const ScenarioError& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("grid point [NOPE]"), std::string::npos) << what;
    EXPECT_NE(what.find("unknown heuristic"), std::string::npos) << what;
  }
}

TEST(Sweep, RejectsMalformedAxes) {
  EXPECT_THROW(parseDoc(R"({"sweep": [{"values": [1]}]})"), ScenarioError);
  EXPECT_THROW(
      parseDoc(R"({"sweep": [{"field": "run.scale"}]})"), ScenarioError);
  EXPECT_THROW(parseDoc(R"({"sweep": [{"field": "run.scale",
      "values": [0.1], "range": {"from": 1, "to": 2, "step": 1}}]})"),
               ScenarioError);
  EXPECT_THROW(parseDoc(R"({"sweep": [{"field": "run.scale",
      "range": {"from": 1, "to": 2, "step": 0}}]})"),
               ScenarioError);
  EXPECT_THROW(parseDoc(R"({"sweep": [{"field": "run.scale",
      "values": [0.1, 0.2], "labels": ["only-one"]}]})"),
               ScenarioError);
  EXPECT_THROW(parseDoc(R"({"sweep": [{"cases": []}]})"), ScenarioError);
  EXPECT_THROW(parseDoc(R"({"sweep": [{"cases": [{"set": {}}]}]})"),
               ScenarioError);
}

TEST(Sweep, SetDirectiveParsesJsonValuesAndBareWords) {
  JsonValue root = util::parseJson(R"({"sim": {"heuristic": "MM"}})");
  exp::applySetDirective(root, "sim.heuristic=MSD");
  exp::applySetDirective(root, "run.scale=0.05");
  exp::applySetDirective(root, "sim.pct_cache=false");
  exp::applySetDirective(root, "name=\"quoted name\"");
  EXPECT_EQ(root.find("sim")->find("heuristic")->asString(), "MSD");
  EXPECT_DOUBLE_EQ(root.find("run")->find("scale")->asNumber(), 0.05);
  EXPECT_EQ(root.find("sim")->find("pct_cache")->asBool(), false);
  EXPECT_EQ(root.find("name")->asString(), "quoted name");
  EXPECT_THROW(exp::applySetDirective(root, "no-equals"), ScenarioError);
  EXPECT_THROW(exp::applySetDirective(root, "=5"), ScenarioError);
  // Traversing through a scalar is an error, not a silent overwrite.
  EXPECT_THROW(exp::applySetDirective(root, "sim.heuristic.x=1"),
               ScenarioError);
}

TEST(Sweep, DocRoundTripPreservesTheGrid) {
  const ScenarioDoc doc = parseDoc(R"({
    "workload": { "rate": 20000 },
    "sweep": [
      { "field": "sim.heuristic", "values": ["MM", "MSD"] },
      { "label": "p", "cases": [
        { "name": "on", "set": { "sim.pruning": {} } },
        { "name": "off", "set": { "sim.pruning": { "enabled": false,
            "reactive_drop": false, "defer": false, "toggle": "never" } } }
      ] }
    ]
  })");
  const ScenarioDoc again = exp::parseScenarioDoc(exp::writeScenarioDoc(doc));
  const auto grid1 = exp::expandGrid(doc);
  const auto grid2 = exp::expandGrid(again);
  ASSERT_EQ(grid1.size(), grid2.size());
  for (std::size_t i = 0; i < grid1.size(); ++i) {
    EXPECT_EQ(grid1[i].labels, grid2[i].labels);
    EXPECT_TRUE(exp::scenarioSpecToJson(grid1[i].spec) ==
                exp::scenarioSpecToJson(grid2[i].spec))
        << "grid point " << i;
  }
}

TEST(Sweep, RunSweepMatchesDirectExperiments) {
  // End-to-end: a 2x2 sweep at tiny scale must reproduce runExperiment on
  // the equivalent hand-built specs, byte for byte.
  const ScenarioDoc doc = parseDoc(R"({
    "run": { "trials": 2, "scale": 0.015 },
    "sweep": [
      { "field": "sim.heuristic", "values": ["MM", "MCT"] }
    ]
  })");
  const std::vector<exp::SweepOutcome> outcomes = exp::runSweep(doc);
  ASSERT_EQ(outcomes.size(), 2u);

  exp::PaperScenario::Options options;
  options.scale = 0.015;
  options.trials = 2;
  const exp::PaperScenario paper(options);
  for (std::size_t i = 0; i < outcomes.size(); ++i) {
    exp::ExperimentSpec spec = paper.experimentSpec(
        exp::PaperScenario::kRate15k, workload::ArrivalPattern::Spiky);
    spec.sim.heuristic = i == 0 ? "MM" : "MCT";
    const exp::ExperimentResult direct =
        exp::runExperiment(paper.hetero(), spec);
    EXPECT_EQ(outcomes[i].result.robustnessCi.mean,
              direct.robustnessCi.mean);
    EXPECT_EQ(outcomes[i].result.robustnessCi.halfWidth,
              direct.robustnessCi.halfWidth);
    EXPECT_EQ(outcomes[i].result.perTrialRobustness,
              direct.perTrialRobustness);
  }
}

TEST(Sweep, ModelCacheSharesThePaperScenario) {
  // Two grid points with identical PET/scale keys must reuse one
  // PaperScenario (the sweep runner's whole point); a swept pet seed must
  // not.
  const ScenarioDoc shared = parseDoc(R"({
    "run": { "trials": 1, "scale": 0.01 },
    "sweep": [ { "field": "sim.heuristic", "values": ["MM", "MSD"] } ]
  })");
  const auto grid = exp::expandGrid(shared);
  EXPECT_EQ(exp::scenarioModelKey(grid[0].spec),
            exp::scenarioModelKey(grid[1].spec));

  const ScenarioDoc differing = parseDoc(R"({
    "run": { "trials": 1, "scale": 0.01 },
    "sweep": [ { "field": "pet.seed", "values": [1, 2] } ]
  })");
  const auto grid2 = exp::expandGrid(differing);
  EXPECT_NE(exp::scenarioModelKey(grid2[0].spec),
            exp::scenarioModelKey(grid2[1].spec));
}

}  // namespace
