// Tests for the ten mapping heuristics of Section III and the
// MappingContext facade they run against.

#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "heuristics/batch.h"
#include "heuristics/context.h"
#include "heuristics/homogeneous.h"
#include "heuristics/immediate.h"
#include "heuristics/registry.h"
#include "sim/machine.h"
#include "test_util.h"

namespace {

using hcs::heuristics::Assignment;
using hcs::heuristics::MappingContext;
using hcs::prob::DiscretePmf;
using hcs::sim::Machine;
using hcs::sim::MachineId;
using hcs::sim::TaskId;
using hcs::sim::TaskPool;
using hcs::testutil::FakeModel;

/// Two machines; type 0 prefers machine 0 (2 vs 6), type 1 prefers
/// machine 1 (8 vs 3) — an inconsistent 2x2 system.
FakeModel affinityModel() {
  return FakeModel::deterministic({{2.0, 6.0}, {8.0, 3.0}});
}

struct TestWorld {
  explicit TestWorld(int numMachines, const FakeModel& model,
                     std::size_t capacity = 4)
      : model(model), capacity(capacity) {
    for (int j = 0; j < numMachines; ++j) machines.emplace_back(j, 1.0);
  }

  MappingContext context(double now = 0.0) const {
    return MappingContext(now, pool, machines, model, capacity);
  }

  TaskId addTask(int type, double arrival, double deadline) {
    return pool.create(type, arrival, deadline);
  }

  void preload(MachineId machine, int type, int count) {
    for (int i = 0; i < count; ++i) {
      const TaskId id = pool.create(type, 0.0, 1e9);
      machines[static_cast<std::size_t>(machine)].dispatch(id, 0.0, pool,
                                                           model);
    }
  }

  TaskPool pool;
  std::vector<Machine> machines;
  const FakeModel& model;
  std::size_t capacity;
};

// --- MappingContext ------------------------------------------------------------

TEST(MappingContextTest, ExpectedCompletionAddsReadyAndExec) {
  const FakeModel model = affinityModel();
  TestWorld world(2, model);
  world.preload(0, 0, 2);  // machine 0 busy for 4 units
  const TaskId t = world.addTask(1, 0.0, 100.0);
  const MappingContext ctx = world.context();
  EXPECT_DOUBLE_EQ(ctx.expectedReady(0), 4.0);
  EXPECT_DOUBLE_EQ(ctx.expectedReady(1), 0.0);
  EXPECT_DOUBLE_EQ(ctx.expectedCompletion(t, 0), 12.0);  // 4 + 8
  EXPECT_DOUBLE_EQ(ctx.expectedCompletion(t, 1), 3.0);   // 0 + 3
}

TEST(MappingContextTest, FreeSlotsCountRunningTask) {
  const FakeModel model = affinityModel();
  TestWorld world(2, model, /*capacity=*/3);
  const MappingContext before = world.context();
  EXPECT_EQ(before.freeSlots(0), 3u);
  world.preload(0, 0, 2);  // 1 running + 1 queued
  const MappingContext after = world.context();
  EXPECT_EQ(after.freeSlots(0), 1u);
  world.preload(0, 0, 1);
  const MappingContext full = world.context();
  EXPECT_EQ(full.freeSlots(0), 0u);
}

TEST(MappingContextTest, UnboundedCapacityNeverFills) {
  const FakeModel model = affinityModel();
  TestWorld world(2, model, MappingContext::kUnbounded);
  world.preload(0, 0, 50);
  EXPECT_EQ(world.context().freeSlots(0), MappingContext::kUnbounded);
}

TEST(MappingContextTest, SuccessChanceMatchesDirectConvolution) {
  std::vector<std::vector<DiscretePmf>> pets;
  pets.push_back({DiscretePmf(2, {0.5, 0.0, 0.5})});  // P(2)=.5, P(4)=.5
  const FakeModel model{std::move(pets)};
  TestWorld world(1, model);
  world.preload(0, 0, 1);  // one running task
  const TaskId t = world.addTask(0, 0.0, 6.0);
  // PCT = running {2,4} * exec {2,4}: {4:.25, 6:.5, 8:.25}; P[<=6] = .75.
  EXPECT_NEAR(world.context().successChance(t, 0), 0.75, 1e-12);
}

TEST(MappingContextTest, SuccessChancesBatchMatchesPerMachineQueries) {
  const FakeModel model = affinityModel();
  TestWorld world(2, model);
  world.preload(0, 0, 2);
  world.preload(1, 1, 1);
  const TaskId t = world.addTask(0, 0.0, 9.0);
  // With and without a PCT cache attached, the bulk query must agree
  // exactly with the per-machine Eq. 2 evaluations.
  const MappingContext plain = world.context();
  const std::vector<double> bulk = plain.successChances(t);
  ASSERT_EQ(bulk.size(), 2u);
  for (MachineId j = 0; j < 2; ++j) {
    EXPECT_EQ(bulk[static_cast<std::size_t>(j)], plain.successChance(t, j));
  }
  hcs::heuristics::PctCache cache;
  const MappingContext cached(0.0, world.pool, world.machines, world.model,
                              world.capacity, &cache);
  const std::vector<double> bulkCached = cached.successChances(t);
  ASSERT_EQ(bulkCached.size(), 2u);
  for (MachineId j = 0; j < 2; ++j) {
    EXPECT_EQ(bulkCached[static_cast<std::size_t>(j)],
              bulk[static_cast<std::size_t>(j)]);
  }
}

TEST(ImmediateHeuristicTest, MaxChancePicksTheHighestSuccessChance) {
  const FakeModel model = affinityModel();
  TestWorld world(2, model);
  // Machine 0 is deeply loaded; a type-0 task with a tight deadline can
  // only make it on the idle machine 1 (exec 6 <= 8) — MET would have
  // chosen the overloaded machine 0 (exec 2).
  world.preload(0, 0, 3);
  const TaskId t = world.addTask(0, 0.0, 7.0);
  hcs::heuristics::MaxChance mc;
  const MappingContext ctx = world.context();
  EXPECT_EQ(mc.selectMachine(ctx, t), 1);
  const std::vector<double> chances = ctx.successChances(t);
  EXPECT_GT(chances[1], chances[0]);
}

TEST(MappingContextTest, RejectsEmptyOrZeroCapacity) {
  const FakeModel model = affinityModel();
  TaskPool pool;
  std::vector<Machine> none;
  EXPECT_THROW(MappingContext(0.0, pool, none, model, 4),
               std::invalid_argument);
  std::vector<Machine> one;
  one.emplace_back(0, 1.0);
  EXPECT_THROW(MappingContext(0.0, pool, one, model, 0),
               std::invalid_argument);
}

// --- Immediate-mode heuristics ---------------------------------------------------

TEST(ImmediateTest, RoundRobinCycles) {
  const FakeModel model = affinityModel();
  TestWorld world(2, model);
  hcs::heuristics::RoundRobin rr;
  const TaskId t = world.addTask(0, 0.0, 100.0);
  const MappingContext ctx = world.context();
  EXPECT_EQ(rr.selectMachine(ctx, t), 0);
  EXPECT_EQ(rr.selectMachine(ctx, t), 1);
  EXPECT_EQ(rr.selectMachine(ctx, t), 0);
}

TEST(ImmediateTest, MetPicksAffinityIgnoringLoad) {
  const FakeModel model = affinityModel();
  TestWorld world(2, model);
  world.preload(0, 0, 10);  // machine 0 heavily loaded
  hcs::heuristics::MinimumExpectedExecutionTime met;
  const TaskId fast0 = world.addTask(0, 0.0, 100.0);
  const TaskId fast1 = world.addTask(1, 0.0, 100.0);
  const MappingContext ctx = world.context();
  EXPECT_EQ(met.selectMachine(ctx, fast0), 0);  // still machine 0
  EXPECT_EQ(met.selectMachine(ctx, fast1), 1);
}

TEST(ImmediateTest, MctAccountsForQueuedWork) {
  const FakeModel model = affinityModel();
  TestWorld world(2, model);
  world.preload(0, 0, 10);  // ready at 20
  hcs::heuristics::MinimumExpectedCompletionTime mct;
  const TaskId t = world.addTask(0, 0.0, 100.0);
  // Machine 0: 20 + 2 = 22; machine 1: 0 + 6 = 6.
  EXPECT_EQ(mct.selectMachine(world.context(), t), 1);
}

TEST(ImmediateTest, KpbRestrictsToAffinitySubset) {
  // Three machines: type 0 execs {2, 3, 50}.  K=2/3 keeps machines {0,1};
  // with machine 0 loaded, KPB must pick machine 1 even though machine 2
  // is idle (MCT would consider it; MET would pick loaded machine 0).
  const FakeModel model = FakeModel::deterministic({{2.0, 3.0, 50.0}});
  TestWorld world(3, model);
  world.preload(0, 0, 20);  // machine 0 ready at 40
  hcs::heuristics::KPercentBest kpb(2.0 / 3.0);
  const TaskId t = world.addTask(0, 0.0, 100.0);
  EXPECT_EQ(kpb.selectMachine(world.context(), t), 1);
}

TEST(ImmediateTest, KpbWithFullKEqualsMct) {
  const FakeModel model = affinityModel();
  TestWorld world(2, model);
  world.preload(0, 0, 3);
  hcs::heuristics::KPercentBest kpb(1.0);
  hcs::heuristics::MinimumExpectedCompletionTime mct;
  for (int type = 0; type < 2; ++type) {
    const TaskId t = world.addTask(type, 0.0, 100.0);
    EXPECT_EQ(kpb.selectMachine(world.context(), t),
              mct.selectMachine(world.context(), t));
  }
}

TEST(ImmediateTest, KpbRejectsBadK) {
  EXPECT_THROW(hcs::heuristics::KPercentBest(0.0), std::invalid_argument);
  EXPECT_THROW(hcs::heuristics::KPercentBest(1.5), std::invalid_argument);
}

// --- Batch-mode heterogeneous heuristics ------------------------------------------

std::vector<TaskId> ids(const std::vector<Assignment>& assignments) {
  std::vector<TaskId> out;
  out.reserve(assignments.size());
  for (const auto& a : assignments) out.push_back(a.task);
  return out;
}

TEST(BatchTest, MmPrefersShortTasksFirst) {
  const FakeModel model = FakeModel::deterministic({{1.0, 4.0}, {10.0, 30.0}});
  TestWorld world(2, model, /*capacity=*/1);
  const TaskId longTask = world.addTask(1, 0.0, 100.0);
  const TaskId shortTask = world.addTask(0, 0.0, 100.0);
  const std::vector<TaskId> batch = {longTask, shortTask};
  hcs::heuristics::MinCompletionMinCompletion mm;
  const auto assignments = mm.map(world.context(), batch);
  // Both machines have one slot; the short task wins machine 0 (its best),
  // and the long task gets the other slot.
  ASSERT_EQ(assignments.size(), 2u);
  EXPECT_EQ(assignments[0].task, shortTask);
  EXPECT_EQ(assignments[0].machine, 0);
  EXPECT_EQ(assignments[1].task, longTask);
  EXPECT_EQ(assignments[1].machine, 1);
}

TEST(BatchTest, MsdPrefersSoonestDeadline) {
  const FakeModel model = FakeModel::deterministic({{2.0, 2.0}});
  TestWorld world(2, model, /*capacity=*/1);
  const TaskId lax = world.addTask(0, 0.0, 100.0);
  const TaskId urgent = world.addTask(0, 0.0, 5.0);
  hcs::heuristics::MinCompletionSoonestDeadline msd;
  const auto assignments =
      msd.map(world.context(), std::vector<TaskId>{lax, urgent});
  ASSERT_EQ(assignments.size(), 2u);
  // Phase 1 routes both to machine 0 (tie broken by index); phase 2 picks
  // the urgent one there, and the lax task lands on machine 1 next round.
  EXPECT_EQ(assignments[0].task, urgent);
  EXPECT_EQ(assignments[0].machine, 0);
  EXPECT_EQ(assignments[1].task, lax);
}

TEST(BatchTest, MmuPrefersTightestSlack) {
  const FakeModel model = FakeModel::deterministic({{2.0, 2.0}});
  TestWorld world(2, model, /*capacity=*/1);
  const TaskId comfortable = world.addTask(0, 0.0, 50.0);
  const TaskId tight = world.addTask(0, 0.0, 4.0);
  hcs::heuristics::MinCompletionMaxUrgency mmu;
  const auto assignments =
      mmu.map(world.context(), std::vector<TaskId>{comfortable, tight});
  ASSERT_EQ(assignments.size(), 2u);
  EXPECT_EQ(assignments[0].task, tight);
}

TEST(BatchTest, MmuTreatsPastDueAsMaximallyUrgent) {
  const FakeModel model = FakeModel::deterministic({{2.0}});
  TestWorld world(1, model, /*capacity=*/1);
  const TaskId doomed = world.addTask(0, 0.0, 1.0);  // slack 1 - 2 < 0
  const TaskId healthy = world.addTask(0, 0.0, 10.0);
  hcs::heuristics::MinCompletionMaxUrgency mmu;
  const auto assignments =
      mmu.map(world.context(), std::vector<TaskId>{healthy, doomed});
  ASSERT_EQ(assignments.size(), 1u);
  EXPECT_EQ(assignments[0].task, doomed);
}

TEST(BatchTest, RespectsQueueCapacity) {
  const FakeModel model = affinityModel();
  TestWorld world(2, model, /*capacity=*/2);
  std::vector<TaskId> batch;
  for (int i = 0; i < 10; ++i) batch.push_back(world.addTask(0, 0.0, 100.0));
  hcs::heuristics::MinCompletionMinCompletion mm;
  const auto assignments = mm.map(world.context(), batch);
  EXPECT_EQ(assignments.size(), 4u);  // 2 machines x capacity 2
  // No task assigned twice.
  auto assigned = ids(assignments);
  std::sort(assigned.begin(), assigned.end());
  EXPECT_EQ(std::adjacent_find(assigned.begin(), assigned.end()),
            assigned.end());
}

TEST(BatchTest, EmptyBatchMapsNothing) {
  const FakeModel model = affinityModel();
  TestWorld world(2, model);
  hcs::heuristics::MinCompletionMinCompletion mm;
  EXPECT_TRUE(mm.map(world.context(), std::vector<TaskId>{}).empty());
}

TEST(BatchTest, FullQueuesMapNothing) {
  const FakeModel model = affinityModel();
  TestWorld world(2, model, /*capacity=*/1);
  world.preload(0, 0, 1);
  world.preload(1, 0, 1);
  hcs::heuristics::MinCompletionMinCompletion mm;
  const TaskId t = world.addTask(0, 0.0, 100.0);
  EXPECT_TRUE(mm.map(world.context(), std::vector<TaskId>{t}).empty());
}

TEST(BatchTest, MaxMinPrefersLongTasksFirst) {
  // Mirror of MmPrefersShortTasksFirst: MaxMin gives the long task its
  // best machine first.
  const FakeModel model = FakeModel::deterministic({{1.0, 4.0}, {10.0, 30.0}});
  TestWorld world(2, model, /*capacity=*/1);
  const TaskId longTask = world.addTask(1, 0.0, 100.0);
  const TaskId shortTask = world.addTask(0, 0.0, 100.0);
  hcs::heuristics::MaxMin maxmin;
  const auto assignments =
      maxmin.map(world.context(), std::vector<TaskId>{longTask, shortTask});
  ASSERT_EQ(assignments.size(), 2u);
  EXPECT_EQ(assignments[0].task, longTask);
  EXPECT_EQ(assignments[0].machine, 0);  // 10 on m0 vs 30 on m1
  EXPECT_EQ(assignments[1].task, shortTask);
}

TEST(BatchTest, SufferagePrioritizesTaskWithMostToLose) {
  // Both tasks prefer machine 0.  Task A: 2 on m0, 20 on m1 (sufferage 18).
  // Task B: 3 on m0, 4 on m1 (sufferage 1).  With one slot per machine,
  // Sufferage gives machine 0 to A; MM would give it to B (lower ECT).
  const FakeModel model = FakeModel::deterministic({{2.0, 20.0}, {3.0, 4.0}});
  TestWorld world(2, model, /*capacity=*/1);
  const TaskId a = world.addTask(0, 0.0, 100.0);
  const TaskId b = world.addTask(1, 0.0, 100.0);
  hcs::heuristics::SufferageHeuristic sufferage;
  const auto chosen =
      sufferage.map(world.context(), std::vector<TaskId>{b, a});
  ASSERT_EQ(chosen.size(), 2u);
  EXPECT_EQ(chosen[0].task, a);
  EXPECT_EQ(chosen[0].machine, 0);
  EXPECT_EQ(chosen[1].task, b);
  EXPECT_EQ(chosen[1].machine, 1);

  hcs::heuristics::MinCompletionMinCompletion mm;
  const auto mmChosen = mm.map(world.context(), std::vector<TaskId>{b, a});
  ASSERT_EQ(mmChosen.size(), 2u);
  EXPECT_EQ(mmChosen[0].task, a);  // 2 < 3: A still wins m0 under MM here
}

TEST(BatchTest, SufferageWithSingleOpenMachineFallsBackToCompletion) {
  // Only one machine has slots: secondEct == ect, every sufferage is zero,
  // and the completion-time tie-break decides.
  const FakeModel model = FakeModel::deterministic({{5.0, 1.0}, {2.0, 1.0}});
  TestWorld world(2, model, /*capacity=*/1);
  world.preload(1, 0, 1);  // machine 1 full
  const TaskId slow = world.addTask(0, 0.0, 100.0);
  const TaskId fast = world.addTask(1, 0.0, 100.0);
  hcs::heuristics::SufferageHeuristic sufferage;
  const auto chosen =
      sufferage.map(world.context(), std::vector<TaskId>{slow, fast});
  ASSERT_EQ(chosen.size(), 1u);
  EXPECT_EQ(chosen[0].task, fast);
  EXPECT_EQ(chosen[0].machine, 0);
}

TEST(BatchTest, MmBalancesAcrossMachinesAsVirtualQueuesGrow) {
  // Identical machines: MM must spread 6 equal tasks 3/3, not pile on one.
  const FakeModel model = FakeModel::deterministic({{5.0, 5.0}});
  TestWorld world(2, model, /*capacity=*/4);
  std::vector<TaskId> batch;
  for (int i = 0; i < 6; ++i) batch.push_back(world.addTask(0, 0.0, 100.0));
  hcs::heuristics::MinCompletionMinCompletion mm;
  const auto assignments = mm.map(world.context(), batch);
  ASSERT_EQ(assignments.size(), 6u);
  int onMachine0 = 0;
  for (const auto& a : assignments) onMachine0 += (a.machine == 0) ? 1 : 0;
  EXPECT_EQ(onMachine0, 3);
}

// --- Homogeneous heuristics ---------------------------------------------------------

TEST(HomogeneousTest, FcfsRrPreservesArrivalOrderAndCycles) {
  const FakeModel model = FakeModel::deterministic({{3.0, 3.0, 3.0}});
  TestWorld world(3, model, /*capacity=*/2);
  std::vector<TaskId> batch;
  for (int i = 0; i < 5; ++i) batch.push_back(world.addTask(0, 0.0, 100.0));
  hcs::heuristics::FcfsRoundRobin fcfs;
  const auto assignments = fcfs.map(world.context(), batch);
  ASSERT_EQ(assignments.size(), 5u);
  for (std::size_t i = 0; i < 5; ++i) {
    EXPECT_EQ(assignments[i].task, batch[i]);
    EXPECT_EQ(assignments[i].machine, static_cast<int>(i % 3));
  }
}

TEST(HomogeneousTest, FcfsRrSkipsFullMachines) {
  const FakeModel model = FakeModel::deterministic({{3.0, 3.0}});
  TestWorld world(2, model, /*capacity=*/1);
  world.preload(0, 0, 1);  // machine 0 full
  hcs::heuristics::FcfsRoundRobin fcfs;
  const TaskId t = world.addTask(0, 0.0, 100.0);
  const auto assignments = fcfs.map(world.context(), std::vector<TaskId>{t});
  ASSERT_EQ(assignments.size(), 1u);
  EXPECT_EQ(assignments[0].machine, 1);
}

TEST(HomogeneousTest, EdfMapsByDeadlineOrder) {
  const FakeModel model = FakeModel::deterministic({{4.0, 4.0}});
  TestWorld world(2, model, /*capacity=*/1);
  const TaskId late = world.addTask(0, 0.0, 90.0);
  const TaskId soon = world.addTask(0, 0.0, 10.0);
  const TaskId mid = world.addTask(0, 0.0, 50.0);
  hcs::heuristics::EarliestDeadlineFirst edf;
  const auto assignments =
      edf.map(world.context(), std::vector<TaskId>{late, soon, mid});
  ASSERT_EQ(assignments.size(), 2u);  // 2 slots only
  EXPECT_EQ(assignments[0].task, soon);
  EXPECT_EQ(assignments[1].task, mid);
}

TEST(HomogeneousTest, SjfMapsByExecutionTimeOrder) {
  // Type execution times 7 / 1 / 4 on every machine.
  const FakeModel model =
      FakeModel::deterministic({{7.0, 7.0}, {1.0, 1.0}, {4.0, 4.0}});
  TestWorld world(2, model, /*capacity=*/1);
  const TaskId slow = world.addTask(0, 0.0, 100.0);
  const TaskId quick = world.addTask(1, 0.0, 100.0);
  const TaskId medium = world.addTask(2, 0.0, 100.0);
  hcs::heuristics::ShortestJobFirst sjf;
  const auto assignments =
      sjf.map(world.context(), std::vector<TaskId>{slow, quick, medium});
  ASSERT_EQ(assignments.size(), 2u);
  EXPECT_EQ(assignments[0].task, quick);
  EXPECT_EQ(assignments[1].task, medium);
}

// --- Registry ------------------------------------------------------------------------

TEST(RegistryTest, BuildsEveryAdvertisedHeuristic) {
  for (const auto& name : hcs::heuristics::immediateHeuristicNames()) {
    const auto h = hcs::heuristics::makeImmediate(name);
    EXPECT_EQ(h->name(), name);
    EXPECT_TRUE(hcs::heuristics::isImmediateHeuristic(name));
    EXPECT_FALSE(hcs::heuristics::isBatchHeuristic(name));
  }
  for (const auto& name : hcs::heuristics::batchHeteroHeuristicNames()) {
    EXPECT_EQ(hcs::heuristics::makeBatch(name)->name(), name);
    EXPECT_TRUE(hcs::heuristics::isBatchHeuristic(name));
  }
  for (const auto& name : hcs::heuristics::homogeneousHeuristicNames()) {
    EXPECT_EQ(hcs::heuristics::makeBatch(name)->name(), name);
    EXPECT_TRUE(hcs::heuristics::isBatchHeuristic(name));
  }
}

TEST(RegistryTest, RejectsUnknownNames) {
  EXPECT_THROW(hcs::heuristics::makeImmediate("MM"), std::invalid_argument);
  EXPECT_THROW(hcs::heuristics::makeBatch("MCT"), std::invalid_argument);
  EXPECT_THROW(hcs::heuristics::makeBatch("nope"), std::invalid_argument);
}

TEST(RegistryTest, KpbOptionIsForwarded) {
  hcs::heuristics::HeuristicOptions options;
  options.kpbPercent = 0.5;
  const auto h = hcs::heuristics::makeImmediate("KPB", options);
  const auto* kpb = dynamic_cast<hcs::heuristics::KPercentBest*>(h.get());
  ASSERT_NE(kpb, nullptr);
  EXPECT_DOUBLE_EQ(kpb->kPercent(), 0.5);
}

}  // namespace
