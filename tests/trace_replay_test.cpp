// Trace replay contracts (the streaming half of workload/trace_io.h):
//  - A header-only hcs trace is a valid EMPTY stream; malformed, truncated,
//    out-of-order, and out-of-range records are rejected with the offending
//    file and line number.
//  - Round trip: generate -> save -> replay yields the exact TaskSpec
//    sequence of the materialized workload, and a trial run off the replay
//    stream is byte-identical to the materialized trial.
//  - CSV cluster traces (Azure Functions / Borg-style) map onto the task
//    model deterministically: FNV-hashed types, slack-derived deadlines,
//    Borg priorities as task values, one header line auto-skipped.
//  - LimitedTaskStream applies the scenario stream block's max_tasks /
//    max_time cutoffs to any source.

#include <gtest/gtest.h>

#include <fstream>
#include <memory>
#include <stdexcept>
#include <string>
#include <vector>

#include "core/simulation.h"
#include "workload/pet_matrix.h"
#include "workload/stream.h"
#include "workload/trace_io.h"
#include "workload/workload.h"

namespace {

using namespace hcs;

std::string writeTemp(const std::string& name, const std::string& contents) {
  const std::string path = ::testing::TempDir() + name;
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out << contents;
  return path;
}

std::vector<workload::TaskSpec> drain(workload::TaskStream& stream) {
  std::vector<workload::TaskSpec> specs;
  while (stream.peek() != nullptr) specs.push_back(stream.pop());
  return specs;
}

/// The message a stream raises while draining, "" if it drains cleanly.
std::string drainError(workload::TaskStream& stream) {
  try {
    drain(stream);
  } catch (const std::runtime_error& e) {
    return e.what();
  }
  return "";
}

bool sameSpecs(const std::vector<workload::TaskSpec>& a,
               const std::vector<workload::TaskSpec>& b) {
  if (a.size() != b.size()) return false;
  for (std::size_t i = 0; i < a.size(); ++i) {
    if (a[i].type != b[i].type || a[i].arrival != b[i].arrival ||
        a[i].deadline != b[i].deadline || a[i].value != b[i].value) {
      return false;
    }
  }
  return true;
}

// --- hcs trace replay -------------------------------------------------------

TEST(TraceReplayTest, HeaderOnlyTraceIsEmptyStream) {
  const std::string path =
      writeTemp("empty.trace", "hcs-workload v2 4\n");
  workload::TraceTaskStream stream(path);
  EXPECT_EQ(stream.numTaskTypes(), 4);
  EXPECT_EQ(stream.peek(), nullptr);
  EXPECT_TRUE(drain(stream).empty());
}

TEST(TraceReplayTest, CommentsAndBlankLinesAreSkipped) {
  const std::string path = writeTemp("comments.trace",
                                     "hcs-workload v2 4\n"
                                     "# a comment\n"
                                     "\n"
                                     "1 0.5 2.5 1\n"
                                     "# trailing comment\n");
  workload::TraceTaskStream stream(path);
  const auto specs = drain(stream);
  ASSERT_EQ(specs.size(), 1u);
  EXPECT_EQ(specs[0].type, 1);
  EXPECT_EQ(specs[0].arrival, 0.5);
  EXPECT_EQ(specs[0].deadline, 2.5);
}

TEST(TraceReplayTest, MalformedRecordNamesItsLine) {
  const std::string path = writeTemp("malformed.trace",
                                     "hcs-workload v2 4\n"
                                     "0 1.0 2.0 1\n"
                                     "bogus\n");
  workload::TraceTaskStream stream(path);
  const std::string error = drainError(stream);
  EXPECT_NE(error.find("malformed record"), std::string::npos) << error;
  EXPECT_NE(error.find("line 3"), std::string::npos) << error;
}

TEST(TraceReplayTest, TruncatedFinalRecordNamesItsLine) {
  // v2 requires the value column; a record cut short mid-write must not
  // silently parse as a shorter valid record.
  const std::string path = writeTemp("truncated.trace",
                                     "hcs-workload v2 4\n"
                                     "0 1.0 2.0\n");
  workload::TraceTaskStream stream(path);
  const std::string error = drainError(stream);
  EXPECT_NE(error.find("truncated record"), std::string::npos) << error;
  EXPECT_NE(error.find("line 2"), std::string::npos) << error;
}

TEST(TraceReplayTest, OutOfOrderArrivalsNameTheirLine) {
  const std::string path = writeTemp("unsorted.trace",
                                     "hcs-workload v2 4\n"
                                     "0 5.0 9.0 1\n"
                                     "1 4.0 8.0 1\n");
  workload::TraceTaskStream stream(path);
  const std::string error = drainError(stream);
  EXPECT_NE(error.find("out-of-order arrival"), std::string::npos) << error;
  EXPECT_NE(error.find("line 3"), std::string::npos) << error;
}

TEST(TraceReplayTest, TypeAndValueRangeErrorsNameTheirLine) {
  {
    workload::TraceTaskStream stream(writeTemp("badtype.trace",
                                               "hcs-workload v2 4\n"
                                               "4 1.0 2.0 1\n"));
    const std::string error = drainError(stream);
    EXPECT_NE(error.find("task type out of range"), std::string::npos)
        << error;
    EXPECT_NE(error.find("line 2"), std::string::npos) << error;
  }
  {
    workload::TraceTaskStream stream(writeTemp("badvalue.trace",
                                               "hcs-workload v2 4\n"
                                               "0 1.0 2.0 0\n"));
    EXPECT_NE(drainError(stream).find("non-positive task value"),
              std::string::npos);
  }
  {
    workload::TraceTaskStream stream(writeTemp("baddl.trace",
                                               "hcs-workload v2 4\n"
                                               "0 3.0 2.0 1\n"));
    EXPECT_NE(drainError(stream).find("deadline precedes arrival"),
              std::string::npos);
  }
}

TEST(TraceReplayTest, V1TracesStillReplayWithUnitValues) {
  const std::string path = writeTemp("v1.trace",
                                     "hcs-workload v1 4\n"
                                     "0 1.0 2.0\n"
                                     "1 1.5 3.0\n");
  workload::TraceTaskStream stream(path);
  const auto specs = drain(stream);
  ASSERT_EQ(specs.size(), 2u);
  EXPECT_EQ(specs[0].value, 1.0);
  EXPECT_EQ(specs[1].value, 1.0);
}

TEST(TraceReplayTest, RoundTripReplayMatchesMaterializedTrial) {
  // generate -> save -> replay must reproduce the exact spec sequence, and
  // a trial run off the replay stream must match the materialized trial.
  workload::PetSynthesisConfig petConfig;
  petConfig.numTaskTypes = 4;
  petConfig.numMachineTypes = 4;
  petConfig.samplesPerHistogram = 100;
  const auto pet = std::make_shared<const workload::PetMatrix>(
      workload::PetMatrix::specLike(petConfig, 11));

  workload::ArrivalSpec arrival;
  arrival.span = 120;
  arrival.totalTasks = 400;
  arrival.numTaskTypes = 4;
  const workload::Workload wl =
      workload::Workload::generate(*pet, arrival, {}, 7);

  const std::string path = ::testing::TempDir() + "roundtrip.trace";
  workload::saveWorkloadFile(wl, path);

  workload::TraceTaskStream replay(path);
  EXPECT_EQ(replay.numTaskTypes(), 4);
  EXPECT_TRUE(sameSpecs(drain(replay), wl.tasks()));

  const workload::BoundExecutionModel cluster =
      workload::BoundExecutionModel::heterogeneous(pet);
  core::SimulationConfig config;
  config.warmupMargin = 0;
  const core::TrialResult materialized =
      core::Simulation(cluster, wl, config).run();
  workload::TraceTaskStream replayAgain(path);
  const core::TrialResult streamed =
      core::Simulation(cluster, replayAgain, config).run();
  EXPECT_EQ(materialized.robustnessPercent, streamed.robustnessPercent);
  EXPECT_EQ(materialized.makespan, streamed.makespan);
  EXPECT_EQ(materialized.mappingEvents, streamed.mappingEvents);
  EXPECT_EQ(materialized.metrics.completedOnTime(),
            streamed.metrics.completedOnTime());
  EXPECT_EQ(materialized.metrics.completedLate(),
            streamed.metrics.completedLate());
  EXPECT_EQ(materialized.machineUtilization, streamed.machineUtilization);
}

// --- CSV cluster traces -----------------------------------------------------

TEST(CsvTraceTest, AzureRowsMapOntoTheTaskModel) {
  const std::string path = writeTemp("azure.csv",
                                     "timestamp,function,duration\n"
                                     "0.5,alpha,2.0\n"
                                     "1.5,beta,4.0\n"
                                     "2.5,alpha,2.0\n");
  workload::CsvTraceOptions options;
  options.numTaskTypes = 6;
  options.deadlineSlack = 3.0;
  workload::CsvTaskStream stream(path, workload::CsvTraceFormat::Azure,
                                 options);
  const auto specs = drain(stream);
  ASSERT_EQ(specs.size(), 3u);
  EXPECT_EQ(specs[0].arrival, 0.5);
  EXPECT_EQ(specs[0].deadline, 0.5 + 3.0 * 2.0);
  EXPECT_EQ(specs[0].value, 1.0);
  for (const auto& s : specs) {
    EXPECT_GE(s.type, 0);
    EXPECT_LT(s.type, 6);
  }
  // The FNV type hash is a pure function of the key.
  EXPECT_EQ(specs[0].type, specs[2].type);
}

TEST(CsvTraceTest, TimeScaleRescalesArrivalsAndRuntimes) {
  const std::string path = writeTemp("azure_scaled.csv",
                                     "10,alpha,2\n"
                                     "20,beta,4\n");
  workload::CsvTraceOptions options;
  options.numTaskTypes = 4;
  options.deadlineSlack = 1.0;
  options.timeScale = 0.1;
  workload::CsvTaskStream stream(path, workload::CsvTraceFormat::Azure,
                                 options);
  const auto specs = drain(stream);
  ASSERT_EQ(specs.size(), 2u);
  EXPECT_DOUBLE_EQ(specs[0].arrival, 1.0);
  EXPECT_DOUBLE_EQ(specs[0].deadline, 1.0 + 0.2);
  EXPECT_DOUBLE_EQ(specs[1].arrival, 2.0);
}

TEST(CsvTraceTest, BorgPrioritiesBecomeTaskValues) {
  const std::string path = writeTemp("borg.csv",
                                     "time,jobid,priority,runtime\n"
                                     "0,job-a,5,2.0\n"
                                     "1,job-b,0,2.0\n");
  workload::CsvTaskStream stream(path, workload::CsvTraceFormat::Borg,
                                 workload::CsvTraceOptions{});
  const auto specs = drain(stream);
  ASSERT_EQ(specs.size(), 2u);
  EXPECT_EQ(specs[0].value, 5.0);
  // Priority 0 clamps to the engine's positive-value floor.
  EXPECT_EQ(specs[1].value, 1.0);
}

TEST(CsvTraceTest, ErrorsNameTheOffendingLine) {
  {
    workload::CsvTaskStream stream(
        writeTemp("short.csv", "0.5,alpha\n"),
        workload::CsvTraceFormat::Azure, workload::CsvTraceOptions{});
    const std::string error = drainError(stream);
    EXPECT_NE(error.find("truncated record"), std::string::npos) << error;
    EXPECT_NE(error.find("line 1"), std::string::npos) << error;
  }
  {
    // Only ONE leading header is forgiven; a second non-numeric row is an
    // error, not a comment.
    workload::CsvTaskStream stream(
        writeTemp("two_headers.csv",
                  "timestamp,function,duration\n"
                  "again,not,numeric\n"),
        workload::CsvTraceFormat::Azure, workload::CsvTraceOptions{});
    const std::string error = drainError(stream);
    EXPECT_NE(error.find("malformed timestamp"), std::string::npos) << error;
    EXPECT_NE(error.find("line 2"), std::string::npos) << error;
  }
  {
    workload::CsvTaskStream stream(
        writeTemp("negative.csv", "1.0,alpha,-2.0\n"),
        workload::CsvTraceFormat::Azure, workload::CsvTraceOptions{});
    EXPECT_NE(drainError(stream).find("negative runtime"),
              std::string::npos);
  }
  {
    workload::CsvTaskStream stream(
        writeTemp("unsorted.csv",
                  "2.0,alpha,1.0\n"
                  "1.0,beta,1.0\n"),
        workload::CsvTraceFormat::Azure, workload::CsvTraceOptions{});
    const std::string error = drainError(stream);
    EXPECT_NE(error.find("out-of-order arrival"), std::string::npos)
        << error;
    EXPECT_NE(error.find("line 2"), std::string::npos) << error;
  }
}

// --- Cutoffs (the stream block's max_tasks / max_time) ----------------------

TEST(LimitedStreamTest, MaxTasksCutsTheStreamShort) {
  const std::string path = writeTemp("limit_tasks.trace",
                                     "hcs-workload v2 2\n"
                                     "0 1 2 1\n"
                                     "1 2 3 1\n"
                                     "0 3 4 1\n"
                                     "1 4 5 1\n");
  workload::LimitedTaskStream limited(
      std::make_unique<workload::TraceTaskStream>(path), 2, 0);
  const auto specs = drain(limited);
  ASSERT_EQ(specs.size(), 2u);
  EXPECT_EQ(specs[1].arrival, 2.0);
}

TEST(LimitedStreamTest, MaxTimeCutsAtTheFirstLateArrival) {
  const std::string path = writeTemp("limit_time.trace",
                                     "hcs-workload v2 2\n"
                                     "0 1 2 1\n"
                                     "1 2 3 1\n"
                                     "0 3 4 1\n");
  workload::LimitedTaskStream limited(
      std::make_unique<workload::TraceTaskStream>(path), 0, 2.5);
  const auto specs = drain(limited);
  ASSERT_EQ(specs.size(), 2u);
  EXPECT_EQ(specs[1].arrival, 2.0);
}

TEST(LimitedStreamTest, OpenTaskStreamAppliesSpecCutoffs) {
  const std::string path = writeTemp("open_spec.trace",
                                     "hcs-workload v2 2\n"
                                     "0 1 2 1\n"
                                     "1 2 3 1\n"
                                     "0 3 4 1\n");
  const auto pet = std::make_shared<const workload::PetMatrix>(
      workload::PetMatrix::specLike(
          workload::PetSynthesisConfig{.numTaskTypes = 2,
                                       .numMachineTypes = 2,
                                       .samplesPerHistogram = 50},
          3));
  workload::StreamSpec spec;
  spec.enabled = true;
  spec.trace = path;
  spec.format = "hcs";
  spec.maxTasks = 1;
  workload::ArrivalSpec arrival;
  arrival.numTaskTypes = 2;
  const auto stream =
      workload::openTaskStream(spec, *pet, arrival, {}, 1);
  EXPECT_EQ(drain(*stream).size(), 1u);

  workload::StreamSpec bad = spec;
  bad.format = "parquet";
  EXPECT_THROW(workload::openTaskStream(bad, *pet, arrival, {}, 1),
               std::invalid_argument);
}

}  // namespace
