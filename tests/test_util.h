#pragma once
// Shared helpers for the hcs test suites.

#include <stdexcept>
#include <vector>

#include "prob/pmf.h"
#include "sim/types.h"

namespace hcs::testutil {

/// Hand-built execution model: pet[type][machine].
class FakeModel final : public sim::ExecutionModel {
 public:
  explicit FakeModel(std::vector<std::vector<prob::DiscretePmf>> pets)
      : pets_(std::move(pets)) {
    if (pets_.empty() || pets_.front().empty()) {
      throw std::invalid_argument("FakeModel: empty matrix");
    }
    for (const auto& row : pets_) {
      if (row.size() != pets_.front().size()) {
        throw std::invalid_argument("FakeModel: ragged matrix");
      }
      std::vector<double> means;
      means.reserve(row.size());
      for (const auto& pmf : row) means.push_back(pmf.mean());
      means_.push_back(std::move(means));
    }
  }

  /// Deterministic model: every (type, machine) pair executes in exactly
  /// `exec[type][machine]` time units.
  static FakeModel deterministic(
      const std::vector<std::vector<double>>& exec) {
    std::vector<std::vector<prob::DiscretePmf>> pets;
    pets.reserve(exec.size());
    for (const auto& row : exec) {
      std::vector<prob::DiscretePmf> petsRow;
      petsRow.reserve(row.size());
      for (double e : row) petsRow.push_back(prob::DiscretePmf::pointMass(e));
      pets.push_back(std::move(petsRow));
    }
    return FakeModel(std::move(pets));
  }

  int numMachines() const override {
    return static_cast<int>(pets_.front().size());
  }
  int numTaskTypes() const override { return static_cast<int>(pets_.size()); }

  const prob::DiscretePmf& pet(sim::TaskType type,
                               sim::MachineId machine) const override {
    return pets_[static_cast<std::size_t>(type)]
                [static_cast<std::size_t>(machine)];
  }

  double expectedExec(sim::TaskType type,
                      sim::MachineId machine) const override {
    return means_[static_cast<std::size_t>(type)]
                 [static_cast<std::size_t>(machine)];
  }

 private:
  std::vector<std::vector<prob::DiscretePmf>> pets_;
  std::vector<std::vector<double>> means_;
};

}  // namespace hcs::testutil
