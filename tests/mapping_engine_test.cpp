// The incremental mapping engine's contract: byte-identical trial reports
// to the reference engine for every batch heuristic and pruning
// configuration, eager cancellation in the event queue, and the
// finalize-time drain-drop classification.

#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "core/scheduler.h"
#include "core/simulation.h"
#include "exp/scenario.h"
#include "prob/rng.h"
#include "sim/trace.h"
#include "test_util.h"
#include "workload/workload.h"

namespace {

using namespace hcs;

// --- Engine equivalence ------------------------------------------------------

/// Full lifecycle trace + result digest of one trial.
struct TrialDigest {
  std::vector<sim::TraceEvent> trace;
  double robustness = 0.0;
  std::size_t mappingEvents = 0;
  double makespan = 0.0;
  std::size_t onTime = 0, late = 0, reactive = 0, proactive = 0, defers = 0;

  bool operator==(const TrialDigest&) const = default;
};

TrialDigest runTrial(const core::SimulationConfig& base,
                     const workload::BoundExecutionModel& model,
                     const workload::Workload& wl, bool incremental) {
  core::SimulationConfig config = base;
  config.incrementalMappingEnabled = incremental;
  sim::TraceLog log;
  config.traceSink = log.sink();
  const core::TrialResult r = core::Simulation(model, wl, config).run();
  TrialDigest d;
  d.trace = log.events();
  d.robustness = r.robustnessPercent;
  d.mappingEvents = r.mappingEvents;
  d.makespan = r.makespan;
  d.onTime = r.metrics.completedOnTime();
  d.late = r.metrics.completedLate();
  d.reactive = r.metrics.droppedReactive();
  d.proactive = r.metrics.droppedProactive();
  d.defers = r.metrics.deferrals();
  return d;
}

class EngineEquivalence : public ::testing::TestWithParam<const char*> {};

TEST_P(EngineEquivalence, IdenticalTracesAcrossEnginesPruningAndCache) {
  exp::PaperScenario::Options options;
  options.scale = 0.03;  // ~600 tasks; full lifecycle compare stays fast
  const exp::PaperScenario scenario(options);
  const workload::Workload wl = workload::Workload::generate(
      *scenario.pet(),
      scenario.arrivalSpec(exp::PaperScenario::kRate25k,
                           workload::ArrivalPattern::Spiky),
      {}, 7);

  for (const bool prune : {true, false}) {
    for (const bool cache : {true, false}) {
      core::SimulationConfig config;
      config.heuristic = GetParam();
      config.pruning = prune ? pruning::PruningConfig{}
                             : pruning::PruningConfig::disabled();
      config.pctCacheEnabled = cache;
      config.warmupMargin = 0;
      const TrialDigest reference =
          runTrial(config, scenario.hetero(), wl, false);
      // Adaptive default AND forced-incremental (threshold 0): queues at
      // this test scale may never reach the default threshold, so without
      // the forced run the wide (incremental) evaluation would silently go
      // untested here and only the narrow reference rounds would run.
      for (const std::size_t minQueue :
           {core::SimulationConfig{}.incrementalMapMinQueue,
            std::size_t{0}}) {
        config.incrementalMapMinQueue = minQueue;
        const TrialDigest incremental =
            runTrial(config, scenario.hetero(), wl, true);
        EXPECT_EQ(incremental, reference)
            << GetParam() << " diverged (prune=" << prune
            << ", cache=" << cache << ", minQueue=" << minQueue << ")";
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(AllBatchHeuristics, EngineEquivalence,
                         ::testing::Values("MM", "MSD", "MMU", "MaxMin",
                                           "Sufferage"));

TEST(EngineEquivalenceTest, HomogeneousHeuristicsMatchAcrossEngines) {
  exp::PaperScenario::Options options;
  options.scale = 0.03;
  const exp::PaperScenario scenario(options);
  const workload::Workload wl = workload::Workload::generate(
      *scenario.pet(),
      scenario.arrivalSpec(exp::PaperScenario::kRate20k,
                           workload::ArrivalPattern::Constant),
      {}, 11);
  for (const char* name : {"FCFS-RR", "EDF", "SJF"}) {
    core::SimulationConfig config;
    config.heuristic = name;
    config.warmupMargin = 0;
    const TrialDigest incremental =
        runTrial(config, scenario.homo(), wl, true);
    const TrialDigest reference =
        runTrial(config, scenario.homo(), wl, false);
    EXPECT_EQ(incremental, reference) << name << " diverged";
  }
}

TEST(EngineEquivalenceTest, AbortHeavyConfigurationMatches) {
  exp::PaperScenario::Options options;
  options.scale = 0.03;
  const exp::PaperScenario scenario(options);
  const workload::Workload wl = workload::Workload::generate(
      *scenario.pet(),
      scenario.arrivalSpec(exp::PaperScenario::kRate25k,
                           workload::ArrivalPattern::Spiky),
      {}, 13);
  core::SimulationConfig config;
  config.heuristic = "MMU";
  config.abortRunningAtDeadline = true;
  config.warmupMargin = 0;
  const TrialDigest incremental =
      runTrial(config, scenario.hetero(), wl, true);
  const TrialDigest reference =
      runTrial(config, scenario.hetero(), wl, false);
  EXPECT_EQ(incremental, reference);
}

// --- Adaptive-engine model check ---------------------------------------------

TEST(AdaptiveEngineModelCheck, ThresholdCrossingsPreserveTraceIdentity) {
  // Randomized burst trains built to drive the batch-queue depth back and
  // forth across the adaptive threshold mid-trial: deep bursts (well above
  // the default) force wide incremental rounds, trickle stretches drain
  // the queue below it and force narrow reference rounds, and every
  // crossing exercises the narrow→wide memo-poisoning handoff.  For each
  // seed, the adaptive engine must produce the byte-identical lifecycle
  // trace of BOTH fixed engines (always-incremental via threshold 0, and
  // the reference engine).
  exp::PaperScenario::Options options;
  options.scale = 0.03;
  const exp::PaperScenario scenario(options);
  const workload::BoundExecutionModel& cluster = scenario.hetero();
  const int numTypes = cluster.numTaskTypes();
  const std::size_t defaultMinQueue =
      core::SimulationConfig{}.incrementalMapMinQueue;
  ASSERT_GT(defaultMinQueue, 0u)
      << "default threshold is 0; the adaptive leg would equal forced";

  double meanExec = 0.0;
  for (int k = 0; k < numTypes; ++k) {
    for (int j = 0; j < cluster.numMachines(); ++j) {
      meanExec += cluster.expectedExec(k, j);
    }
  }
  meanExec /= static_cast<double>(numTypes * cluster.numMachines());

  for (const std::uint64_t seed : {1ULL, 29ULL, 9001ULL}) {
    std::uint64_t lcg = seed * 0x9e3779b97f4a7c15ull + 0x2545f4914f6cdd1dull;
    const auto rnd = [&lcg](std::uint64_t bound) {
      lcg = lcg * 6364136223846793005ull + 1442695040888963407ull;
      return (lcg >> 33) % bound;
    };
    std::vector<workload::TaskSpec> specs;
    double t = 0.0;
    while (specs.size() < 400) {
      // Deep burst: 2–4x the threshold lands in one mapping event.
      // Trickle: 1–4 tasks, then a drain pause several service times long.
      const bool deep = rnd(2) == 0;
      const std::size_t n =
          deep ? defaultMinQueue * 2 + rnd(defaultMinQueue * 2)
               : 1 + rnd(4);
      for (std::size_t i = 0; i < n; ++i) {
        const auto type = static_cast<sim::TaskType>(rnd(
            static_cast<std::uint64_t>(numTypes)));
        const double arrival = t + static_cast<double>(i) * 1e-7;
        // Deadlines from tight (drops/defers) to comfortable.
        const double deadline =
            arrival + meanExec * (0.5 + static_cast<double>(rnd(8)));
        specs.push_back(workload::TaskSpec{type, arrival, deadline, 1.0});
      }
      t += meanExec * (deep ? static_cast<double>(2 + rnd(6)) : 0.25);
    }
    const workload::Workload wl(std::move(specs), numTypes);

    core::SimulationConfig config;
    config.heuristic = "MM";
    config.warmupMargin = 0;
    const TrialDigest adaptive = runTrial(config, cluster, wl, true);
    config.incrementalMapMinQueue = 0;
    const TrialDigest forcedIncremental = runTrial(config, cluster, wl, true);
    const TrialDigest reference = runTrial(config, cluster, wl, false);
    ASSERT_GT(adaptive.mappingEvents, 0u);
    EXPECT_EQ(adaptive, reference) << "seed " << seed;
    EXPECT_EQ(forcedIncremental, reference) << "seed " << seed;
  }
}

// --- Hand-built world harness ------------------------------------------------

/// Minimal deterministic world for scheduler-level assertions.
struct ManualWorld {
  explicit ManualWorld(const core::SimulationConfig& config,
                       const sim::ExecutionModel& model, int numMachines,
                       double binWidth = 1.0)
      : model_(model),
        metrics(model.numTaskTypes()),
        rng(123),
        scheduler(config, model.numTaskTypes()) {
    const bool batch =
        core::allocationModeFor(config) == core::AllocationMode::Batch;
    for (int j = 0; j < numMachines; ++j) {
      machines.emplace_back(j, binWidth, /*trackTail=*/batch,
                            /*lazyTailRebuild=*/config.pctCacheEnabled);
    }
  }

  core::World world() {
    return core::World{pool, machines, events, metrics, rng, model_};
  }

  /// Pops events until the queue drains, dispatching to the scheduler.
  sim::Time drain() {
    core::World w = world();
    sim::Time now = 0;
    while (auto e = events.tryPop()) {
      now = e->time;
      if (e->kind == sim::EventKind::TaskArrival) {
        scheduler.handleArrival(w, e->task, now);
      } else {
        scheduler.handleCompletion(w, e->machine, e->task, now);
      }
    }
    return now;
  }

  const sim::ExecutionModel& model_;
  sim::TaskPool pool;
  std::vector<sim::Machine> machines;
  sim::EventQueue events;
  sim::Metrics metrics;
  prob::Rng rng;
  core::Scheduler scheduler;
};

using hcs::testutil::FakeModel;

TEST(EventQueueRegressionTest, AbortHeavyTrialLeavesNoPendingCancellations) {
  // Every task's deadline passes mid-execution, so with abort-at-deadline
  // each started task schedules a completion that is later cancelled.  The
  // indexed heap must free each cancellation eagerly: none may linger.
  // One column per machine: ManualWorld instantiates `numMachines` machines
  // and the scheduler queries the PET for every one of them (a 1-column
  // model with 2 machines is an out-of-bounds read, caught by ASan).
  const FakeModel model = FakeModel::deterministic({{10.0, 10.0}});
  core::SimulationConfig config;
  config.heuristic = "MM";
  config.abortRunningAtDeadline = true;
  config.warmupMargin = 0;
  ManualWorld mw(config, model, /*numMachines=*/2);
  for (int i = 0; i < 12; ++i) {
    const double arrival = static_cast<double>(i);
    const auto id = mw.pool.create(0, arrival, arrival + 3.0);  // hopeless
    mw.events.push(arrival, sim::EventKind::TaskArrival, id);
  }
  core::World w = mw.world();
  sim::Time now = mw.drain();
  mw.scheduler.finalize(w, now);
  EXPECT_GT(mw.metrics.droppedReactive(), 0u);  // aborts really happened
  EXPECT_EQ(mw.events.pendingCancellations(), 0u);
  EXPECT_TRUE(mw.events.empty());
}

TEST(SchedulerFinalizeTest, ClassifiesDrainedBatchTasksByOverdueness) {
  // Two tasks never mapped (machine queues full): at finalize time one is
  // already overdue (reactive drop), one could still have met its deadline
  // in a longer trial (proactive drop).
  const FakeModel model = FakeModel::deterministic({{4.0}});
  core::SimulationConfig config;
  config.heuristic = "MM";
  config.machineQueueCapacity = 1;
  config.pruning = pruning::PruningConfig::disabled();
  config.warmupMargin = 0;
  ManualWorld mw(config, model, /*numMachines=*/1);
  core::World w = mw.world();
  // Occupant runs 0..4 and fills the machine's single system slot.
  const auto occupant = mw.pool.create(0, 0.0, 100.0);
  mw.scheduler.handleArrival(w, occupant, 0.0);
  ASSERT_EQ(mw.pool[occupant].status, sim::TaskStatus::Running);
  // Both arrive while the occupant runs; capacity 1 → neither is mapped.
  const auto overdue = mw.pool.create(0, 1.0, 2.0);    // dead by t=3
  const auto hopeful = mw.pool.create(0, 1.0, 50.0);   // still viable
  mw.scheduler.handleArrival(w, overdue, 1.0);
  mw.scheduler.handleArrival(w, hopeful, 1.0);
  ASSERT_EQ(mw.scheduler.batchQueueLength(), 2u);

  // The trial ends at t=3 with the occupant still running.
  mw.scheduler.finalize(w, 3.0);
  EXPECT_EQ(mw.scheduler.batchQueueLength(), 0u);
  EXPECT_EQ(mw.pool[overdue].status, sim::TaskStatus::DroppedReactive);
  EXPECT_EQ(mw.pool[hopeful].status, sim::TaskStatus::DroppedProactive);
}

}  // namespace
